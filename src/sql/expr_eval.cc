#include "sql/expr_eval.h"

#include <cctype>
#include <cmath>

#include "common/string_util.h"

namespace xomatiq::sql {

using common::Result;
using common::Status;
using rel::Value;
using rel::ValueType;

Status Bind(Expr* e, const rel::Schema& schema, bool allow_aggregates) {
  switch (e->kind) {
    case ExprKind::kLiteral:
    case ExprKind::kStar:
      return Status::OK();
    case ExprKind::kColumnRef: {
      XQ_ASSIGN_OR_RETURN(size_t idx, schema.ResolveColumn(e->column_name));
      e->bound_index = static_cast<int>(idx);
      return Status::OK();
    }
    case ExprKind::kAggregate:
      if (!allow_aggregates) {
        return Status::InvalidArgument(
            "aggregate not allowed here: " + e->ToString());
      }
      if (e->left) XQ_RETURN_IF_ERROR(Bind(e->left.get(), schema, false));
      return Status::OK();
    default:
      break;
  }
  if (e->left) {
    XQ_RETURN_IF_ERROR(Bind(e->left.get(), schema, allow_aggregates));
  }
  if (e->right) {
    XQ_RETURN_IF_ERROR(Bind(e->right.get(), schema, allow_aggregates));
  }
  if (e->extra) {
    XQ_RETURN_IF_ERROR(Bind(e->extra.get(), schema, allow_aggregates));
  }
  for (ExprPtr& item : e->list) {
    XQ_RETURN_IF_ERROR(Bind(item.get(), schema, allow_aggregates));
  }
  return Status::OK();
}

namespace {

Value BoolValue(bool b) { return Value::Int(b ? 1 : 0); }

}  // namespace

// NULL-aware truthiness; NULL -> nullopt.
std::optional<bool> Truthiness(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return std::nullopt;
    case ValueType::kInt:
      return v.AsInt() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0;
    case ValueType::kText:
      return !v.AsText().empty();
  }
  return std::nullopt;
}

namespace {

Result<Value> EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = Value::Compare(l, r);
  switch (op) {
    case BinaryOp::kEq: return BoolValue(c == 0);
    case BinaryOp::kNe: return BoolValue(c != 0);
    case BinaryOp::kLt: return BoolValue(c < 0);
    case BinaryOp::kLe: return BoolValue(c <= 0);
    case BinaryOp::kGt: return BoolValue(c > 0);
    case BinaryOp::kGe: return BoolValue(c >= 0);
    default:
      return Status::Internal("not a comparison op");
  }
}

Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (op == BinaryOp::kConcat) {
    return Value::Text(l.ToString() + r.ToString());
  }
  if (l.type() == ValueType::kInt && r.type() == ValueType::kInt) {
    int64_t a = l.AsInt(), b = r.AsInt();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(a + b);
      case BinaryOp::kSub: return Value::Int(a - b);
      case BinaryOp::kMul: return Value::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value::Int(a % b);
      default:
        return Status::Internal("not arithmetic");
    }
  }
  XQ_ASSIGN_OR_RETURN(double a, l.ToNumeric());
  XQ_ASSIGN_OR_RETURN(double b, r.ToNumeric());
  switch (op) {
    case BinaryOp::kAdd: return Value::Double(a + b);
    case BinaryOp::kSub: return Value::Double(a - b);
    case BinaryOp::kMul: return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    case BinaryOp::kMod:
      if (b == 0) return Status::InvalidArgument("modulo by zero");
      return Value::Double(std::fmod(a, b));
    default:
      return Status::Internal("not arithmetic");
  }
}

}  // namespace

Result<Value> EvalBinaryScalar(BinaryOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return EvalComparison(op, l, r);
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return Status::Internal("AND/OR are not scalar ops");
    default:
      return EvalArithmetic(op, l, r);
  }
}

bool MatchLike(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool MatchContains(std::string_view text, std::string_view keywords) {
  std::vector<std::string> needles = common::TokenizeKeywords(keywords);
  if (needles.empty()) return false;
  std::vector<std::string> words = common::TokenizeKeywords(text);
  for (const std::string& needle : needles) {
    bool found = false;
    for (const std::string& w : words) {
      if (w == needle) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Result<Value> Eval(const Expr& e, const rel::Tuple& tuple) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.value;
    case ExprKind::kColumnRef: {
      if (e.bound_index < 0 ||
          static_cast<size_t>(e.bound_index) >= tuple.size()) {
        return Status::Internal("unbound column " + e.column_name);
      }
      return tuple[static_cast<size_t>(e.bound_index)];
    }
    case ExprKind::kBinary: {
      if (e.bin_op == BinaryOp::kAnd || e.bin_op == BinaryOp::kOr) {
        XQ_ASSIGN_OR_RETURN(Value lv, Eval(*e.left, tuple));
        std::optional<bool> l = Truthiness(lv);
        // Short-circuit per three-valued logic.
        if (e.bin_op == BinaryOp::kAnd && l.has_value() && !*l) {
          return BoolValue(false);
        }
        if (e.bin_op == BinaryOp::kOr && l.has_value() && *l) {
          return BoolValue(true);
        }
        XQ_ASSIGN_OR_RETURN(Value rv, Eval(*e.right, tuple));
        std::optional<bool> r = Truthiness(rv);
        if (e.bin_op == BinaryOp::kAnd) {
          if (r.has_value() && !*r) return BoolValue(false);
          if (l.has_value() && r.has_value()) return BoolValue(*l && *r);
          return Value::Null();
        }
        if (r.has_value() && *r) return BoolValue(true);
        if (l.has_value() && r.has_value()) return BoolValue(*l || *r);
        return Value::Null();
      }
      XQ_ASSIGN_OR_RETURN(Value l, Eval(*e.left, tuple));
      XQ_ASSIGN_OR_RETURN(Value r, Eval(*e.right, tuple));
      switch (e.bin_op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return EvalComparison(e.bin_op, l, r);
        default:
          return EvalArithmetic(e.bin_op, l, r);
      }
    }
    case ExprKind::kUnary: {
      XQ_ASSIGN_OR_RETURN(Value v, Eval(*e.left, tuple));
      if (e.un_op == UnaryOp::kNot) {
        std::optional<bool> b = Truthiness(v);
        if (!b.has_value()) return Value::Null();
        return BoolValue(!*b);
      }
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt) return Value::Int(-v.AsInt());
      XQ_ASSIGN_OR_RETURN(double d, v.ToNumeric());
      return Value::Double(-d);
    }
    case ExprKind::kIsNull: {
      XQ_ASSIGN_OR_RETURN(Value v, Eval(*e.left, tuple));
      return BoolValue(v.is_null() != e.negated);
    }
    case ExprKind::kLike: {
      XQ_ASSIGN_OR_RETURN(Value text, Eval(*e.left, tuple));
      XQ_ASSIGN_OR_RETURN(Value pattern, Eval(*e.right, tuple));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      bool m = MatchLike(text.ToString(), pattern.ToString());
      return BoolValue(m != e.negated);
    }
    case ExprKind::kContains: {
      XQ_ASSIGN_OR_RETURN(Value text, Eval(*e.left, tuple));
      XQ_ASSIGN_OR_RETURN(Value kw, Eval(*e.right, tuple));
      if (text.is_null() || kw.is_null()) return Value::Null();
      return BoolValue(MatchContains(text.ToString(), kw.ToString()));
    }
    case ExprKind::kBetween: {
      XQ_ASSIGN_OR_RETURN(Value v, Eval(*e.left, tuple));
      XQ_ASSIGN_OR_RETURN(Value lo, Eval(*e.right, tuple));
      XQ_ASSIGN_OR_RETURN(Value hi, Eval(*e.extra, tuple));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in = Value::Compare(v, lo) >= 0 && Value::Compare(v, hi) <= 0;
      return BoolValue(in != e.negated);
    }
    case ExprKind::kInList: {
      XQ_ASSIGN_OR_RETURN(Value v, Eval(*e.left, tuple));
      if (v.is_null()) return Value::Null();
      bool saw_null = false;
      for (const ExprPtr& item : e.list) {
        XQ_ASSIGN_OR_RETURN(Value iv, Eval(*item, tuple));
        if (iv.is_null()) {
          saw_null = true;
          continue;
        }
        if (Value::Compare(v, iv) == 0) return BoolValue(!e.negated);
      }
      if (saw_null) return Value::Null();
      return BoolValue(e.negated);
    }
    case ExprKind::kFunc: {
      XQ_ASSIGN_OR_RETURN(Value v, Eval(*e.left, tuple));
      if (v.is_null()) return Value::Null();
      switch (e.func) {
        case ScalarFunc::kLower:
          return Value::Text(common::AsciiToLower(v.ToString()));
        case ScalarFunc::kUpper: {
          std::string s = v.ToString();
          for (char& c : s) {
            c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
          }
          return Value::Text(std::move(s));
        }
        case ScalarFunc::kLength:
          return Value::Int(static_cast<int64_t>(v.ToString().size()));
      }
      return Status::Internal("bad scalar func");
    }
    case ExprKind::kAggregate:
      return Status::Internal(
          "aggregate evaluated outside Aggregate operator: " + e.ToString());
    case ExprKind::kStar:
      return Status::Internal("bare * evaluated");
  }
  return Status::Internal("bad expr kind");
}

Result<std::optional<bool>> EvalPredicate(const Expr& e,
                                          const rel::Tuple& tuple) {
  XQ_ASSIGN_OR_RETURN(Value v, Eval(e, tuple));
  return Truthiness(v);
}

rel::ValueType InferType(const Expr& e, const rel::Schema& schema) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.value.type() == ValueType::kNull ? ValueType::kText
                                                : e.value.type();
    case ExprKind::kColumnRef: {
      auto idx = schema.FindColumn(e.column_name);
      return idx.has_value() ? schema.column(*idx).type : ValueType::kText;
    }
    case ExprKind::kBinary:
      switch (e.bin_op) {
        case BinaryOp::kConcat:
          return ValueType::kText;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          ValueType l = InferType(*e.left, schema);
          ValueType r = InferType(*e.right, schema);
          return (l == ValueType::kInt && r == ValueType::kInt)
                     ? ValueType::kInt
                     : ValueType::kDouble;
        }
        default:
          return ValueType::kInt;  // boolean
      }
    case ExprKind::kUnary:
      return e.un_op == UnaryOp::kNot ? ValueType::kInt
                                      : InferType(*e.left, schema);
    case ExprKind::kIsNull:
    case ExprKind::kLike:
    case ExprKind::kContains:
    case ExprKind::kBetween:
    case ExprKind::kInList:
      return ValueType::kInt;
    case ExprKind::kFunc:
      return e.func == ScalarFunc::kLength ? ValueType::kInt
                                           : ValueType::kText;
    case ExprKind::kAggregate:
      switch (e.agg) {
        case AggFunc::kCount:
          return ValueType::kInt;
        case AggFunc::kAvg:
          return ValueType::kDouble;
        default:
          return e.left ? InferType(*e.left, schema) : ValueType::kDouble;
      }
    case ExprKind::kStar:
      return ValueType::kInt;
  }
  return ValueType::kText;
}

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kAggregate) return true;
  if (e.left && ContainsAggregate(*e.left)) return true;
  if (e.right && ContainsAggregate(*e.right)) return true;
  if (e.extra && ContainsAggregate(*e.extra)) return true;
  for (const ExprPtr& item : e.list) {
    if (ContainsAggregate(*item)) return true;
  }
  return false;
}

}  // namespace xomatiq::sql
