#ifndef XOMATIQ_SQL_PLAN_H_
#define XOMATIQ_SQL_PLAN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relational/database.h"
#include "sql/ast.h"
#include "sql/compiled_expr.h"

namespace xomatiq::sql {

// EXPLAIN ANALYZE actuals for one operator, filled by the Executor when
// ExecutorOptions.collect_stats is on. Accumulation is single-threaded:
// parallel operators tally per-worker counts in thread-private slots and
// publish them here only after the fan-out joins.
struct OpStats {
  uint64_t rows_out = 0;     // rows this operator emitted downstream
  uint64_t batches = 0;      // RowBatches emitted
  uint64_t invocations = 0;  // times the operator pipeline was started
                             // (>1 for rescanned join inner sides)
  // Inclusive wall time of this operator's pipeline. The executor pushes
  // batches from the leaves up, so a node's time covers producing its
  // input AND everything downstream consuming its output; compare rows
  // across siblings, and read time top-down (root time = query time).
  uint64_t ns = 0;
  // Set when execution-time fusion ran this operator inside its parent
  // (filter into scan/join); its own emission counters then stay zero and
  // the fused work is credited to the parent's counters.
  bool fused = false;
  // Parallel operators: rows processed per worker slot (skew view).
  std::vector<uint64_t> partition_rows;
  // Parallel operators: work-stealing morsels this operator executed.
  uint64_t morsels = 0;

  void Clear() { *this = OpStats{}; }
};

enum class PlanKind {
  kSeqScan,        // full table scan
  kParallelSeqScan,// partitioned scan fanned across worker threads
  kIndexScan,      // btree/hash point or range access
  kKeywordScan,    // inverted-index posting fetch for CONTAINS
  kFilter,         // predicate
  kProject,        // expression list
  kNestedLoopJoin, // cross product + optional predicate
  kHashJoin,       // equi-join, build right / probe left
  kIndexNLJoin,    // outer stream + index lookup on inner table
  kSort,
  kLimit,
  kAggregate,      // group by + aggregate functions
  kDistinct,
};

// Operator display name ("SeqScan", "HashJoin", ...), shared by EXPLAIN
// rendering and the benches' per-operator metric labels.
std::string_view PlanKindName(PlanKind kind);

struct SortKey {
  ExprPtr expr;  // bound to child schema
  bool desc = false;
};

struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr arg;  // null for COUNT(*)
};

// Physical plan node. Expressions stored on a node are bound against the
// node's child schema (for scans: the scan's own output schema).
struct PlanNode {
  PlanKind kind = PlanKind::kSeqScan;
  rel::Schema schema;  // output schema (alias-qualified column names)
  std::vector<std::unique_ptr<PlanNode>> children;

  // Scans and IndexNLJoin inner side.
  std::string table;
  std::string alias;
  const rel::IndexEntry* index = nullptr;

  // kIndexScan equality key (literals), one per leading index column.
  std::vector<rel::Value> eq_key;
  // kIndexScan btree range bounds on the first index column (optional).
  std::optional<rel::Value> lo;
  bool lo_inclusive = true;
  std::optional<rel::Value> hi;
  bool hi_inclusive = true;

  // kKeywordScan.
  std::string keyword;

  // kFilter / kNestedLoopJoin residual predicate.
  ExprPtr predicate;

  // kProject.
  std::vector<ExprPtr> project_exprs;

  // kHashJoin equi-key expressions (left bound to children[0] schema,
  // right bound to children[1] schema).
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;

  // kIndexNLJoin: outer-side expressions producing the inner index key.
  std::vector<ExprPtr> outer_key_exprs;

  // kSort.
  std::vector<SortKey> sort_keys;

  // kLimit.
  int64_t limit = -1;   // -1 = unlimited
  int64_t offset = 0;

  // kAggregate.
  std::vector<ExprPtr> group_exprs;
  std::vector<AggSpec> aggs;

  // kParallelSeqScan worker count (>= 2 when chosen by the planner).
  int parallel_degree = 0;

  // Optimizer estimates, set by the cost-based planner (-1 = not costed;
  // rule-based plans stay unannotated so their EXPLAIN output is
  // byte-identical to the pre-optimizer planner). EXPLAIN renders
  // "(est rows=R cost=C)" when present; EXPLAIN ANALYZE places it beside
  // the actuals so estimate-vs-actual drift is visible per operator.
  double est_rows = -1;
  double est_cost = -1;

  // Slot-bound expression programs compiled from the fields above by
  // CompilePlanPrograms (planner.cc); the executor's batched pipeline
  // evaluates these instead of re-walking the AST per row. The ExprPtr
  // originals are kept for EXPLAIN and the row-at-a-time baseline.
  std::optional<CompiledExpr> predicate_prog;
  std::vector<CompiledExpr> project_progs;
  std::vector<CompiledExpr> left_key_progs;
  std::vector<CompiledExpr> right_key_progs;
  std::vector<CompiledExpr> outer_key_progs;
  std::vector<CompiledExpr> sort_key_progs;
  std::vector<CompiledExpr> group_progs;
  std::vector<std::optional<CompiledExpr>> agg_arg_progs;

  // Execution actuals (EXPLAIN ANALYZE). Mutable for the same reason the
  // compiled programs are filled through a const plan: stats are an
  // execution-time cache, not part of the plan's logical identity.
  mutable OpStats stats;

  // Zeroes stats on this node and every descendant.
  void ClearStats() const;

  // Human-readable operator tree (EXPLAIN). EXPLAIN ANALYZE renders the
  // same tree through the same code path with `analyze` set, appending
  // per-operator actuals (rows/batches/time, parallel partition counts).
  std::string ToString(int indent = 0, bool analyze = false) const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_PLAN_H_
