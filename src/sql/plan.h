#ifndef XOMATIQ_SQL_PLAN_H_
#define XOMATIQ_SQL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/database.h"
#include "sql/ast.h"
#include "sql/compiled_expr.h"

namespace xomatiq::sql {

enum class PlanKind {
  kSeqScan,        // full table scan
  kParallelSeqScan,// partitioned scan fanned across worker threads
  kIndexScan,      // btree/hash point or range access
  kKeywordScan,    // inverted-index posting fetch for CONTAINS
  kFilter,         // predicate
  kProject,        // expression list
  kNestedLoopJoin, // cross product + optional predicate
  kHashJoin,       // equi-join, build right / probe left
  kIndexNLJoin,    // outer stream + index lookup on inner table
  kSort,
  kLimit,
  kAggregate,      // group by + aggregate functions
  kDistinct,
};

struct SortKey {
  ExprPtr expr;  // bound to child schema
  bool desc = false;
};

struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr arg;  // null for COUNT(*)
};

// Physical plan node. Expressions stored on a node are bound against the
// node's child schema (for scans: the scan's own output schema).
struct PlanNode {
  PlanKind kind = PlanKind::kSeqScan;
  rel::Schema schema;  // output schema (alias-qualified column names)
  std::vector<std::unique_ptr<PlanNode>> children;

  // Scans and IndexNLJoin inner side.
  std::string table;
  std::string alias;
  const rel::IndexEntry* index = nullptr;

  // kIndexScan equality key (literals), one per leading index column.
  std::vector<rel::Value> eq_key;
  // kIndexScan btree range bounds on the first index column (optional).
  std::optional<rel::Value> lo;
  bool lo_inclusive = true;
  std::optional<rel::Value> hi;
  bool hi_inclusive = true;

  // kKeywordScan.
  std::string keyword;

  // kFilter / kNestedLoopJoin residual predicate.
  ExprPtr predicate;

  // kProject.
  std::vector<ExprPtr> project_exprs;

  // kHashJoin equi-key expressions (left bound to children[0] schema,
  // right bound to children[1] schema).
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;

  // kIndexNLJoin: outer-side expressions producing the inner index key.
  std::vector<ExprPtr> outer_key_exprs;

  // kSort.
  std::vector<SortKey> sort_keys;

  // kLimit.
  int64_t limit = -1;   // -1 = unlimited
  int64_t offset = 0;

  // kAggregate.
  std::vector<ExprPtr> group_exprs;
  std::vector<AggSpec> aggs;

  // kParallelSeqScan worker count (>= 2 when chosen by the planner).
  int parallel_degree = 0;

  // Slot-bound expression programs compiled from the fields above by
  // CompilePlanPrograms (planner.cc); the executor's batched pipeline
  // evaluates these instead of re-walking the AST per row. The ExprPtr
  // originals are kept for EXPLAIN and the row-at-a-time baseline.
  std::optional<CompiledExpr> predicate_prog;
  std::vector<CompiledExpr> project_progs;
  std::vector<CompiledExpr> left_key_progs;
  std::vector<CompiledExpr> right_key_progs;
  std::vector<CompiledExpr> outer_key_progs;
  std::vector<CompiledExpr> sort_key_progs;
  std::vector<CompiledExpr> group_progs;
  std::vector<std::optional<CompiledExpr>> agg_arg_progs;

  // Human-readable operator tree (EXPLAIN).
  std::string ToString(int indent = 0) const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_PLAN_H_
