#ifndef XOMATIQ_SQL_EXECUTOR_H_
#define XOMATIQ_SQL_EXECUTOR_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "sql/plan.h"

namespace xomatiq::sql {

// Streaming plan executor. Rows flow bottom-up through a sink callback;
// the sink returns false to stop early (LIMIT pushes this down, so a
// LIMIT 10 over a million-row scan touches ~10 rows on an index path).
// Blocking operators (sort, hash-join build, aggregate, distinct)
// materialize internally.
class Executor {
 public:
  explicit Executor(rel::Database* db) : db_(db) {}

  using RowSink = std::function<bool(const rel::Tuple&)>;

  // Streams the plan's output rows into `sink`.
  common::Status Execute(const PlanNode& plan, const RowSink& sink);

  // Convenience: materializes all output rows.
  common::Result<std::vector<rel::Tuple>> ExecuteToVector(
      const PlanNode& plan);

 private:
  common::Status ExecScan(const PlanNode& plan, const RowSink& sink);
  common::Status ExecIndexScan(const PlanNode& plan, const RowSink& sink);
  common::Status ExecKeywordScan(const PlanNode& plan, const RowSink& sink);
  common::Status ExecFilter(const PlanNode& plan, const RowSink& sink);
  common::Status ExecProject(const PlanNode& plan, const RowSink& sink);
  common::Status ExecNestedLoopJoin(const PlanNode& plan, const RowSink& sink);
  common::Status ExecHashJoin(const PlanNode& plan, const RowSink& sink);
  common::Status ExecIndexNLJoin(const PlanNode& plan, const RowSink& sink);
  common::Status ExecSort(const PlanNode& plan, const RowSink& sink);
  common::Status ExecLimit(const PlanNode& plan, const RowSink& sink);
  common::Status ExecAggregate(const PlanNode& plan, const RowSink& sink);
  common::Status ExecDistinct(const PlanNode& plan, const RowSink& sink);

  rel::Database* db_;
};

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_EXECUTOR_H_
