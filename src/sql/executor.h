#ifndef XOMATIQ_SQL_EXECUTOR_H_
#define XOMATIQ_SQL_EXECUTOR_H_

#include <functional>
#include <vector>

#include "common/query_options.h"
#include "common/result.h"
#include "relational/database.h"
#include "relational/row_batch.h"
#include "sql/plan.h"

namespace xomatiq::exec {
class WorkerPool;
}

namespace xomatiq::sql {

struct ExecutorOptions {
  // Rows per RowBatch flowing between operators.
  size_t batch_capacity = rel::RowBatch::kDefaultCapacity;
  // Absolute cancellation point. Checked cooperatively — at operator entry
  // and on a sampled stride inside scan/join loops — so an expired query
  // stops within ~one batch of work and returns kTimeout. Applies to the
  // batched pipeline only; the row-at-a-time oracle path ignores it.
  common::Deadline deadline;
  // Worker pool parallel operators fan out on; null = the process-wide
  // exec::WorkerPool::Global(). All queries sharing one pool is the
  // oversubscription guard: total execution threads stay fixed no matter
  // how many sessions run M-way plans. Tests and benches pass their own
  // pool (a 0-worker pool forces every operator serial).
  exec::WorkerPool* pool = nullptr;
  // Rows per work-stealing morsel inside parallel operators.
  size_t morsel_rows = 4096;
  // Runtime admission: a parallel-annotated operator whose actual input
  // has fewer rows than this runs serially — the planner decides from
  // estimates, the executor re-checks against real cardinalities so tiny
  // inputs never pay the fan-out overhead.
  size_t parallel_row_threshold = 8192;
  // Accumulate per-operator actuals (rows/batches/time, parallel-scan
  // partition counts) into each PlanNode's `stats` while executing —
  // the data EXPLAIN ANALYZE renders. Counting is per batch, not per row,
  // so the overhead on the batched path is negligible; it is still off by
  // default so plain queries never touch the stats fields. Callers that
  // reuse a plan should ClearStats() first; the executor only accumulates
  // (join inner sides re-enter the same nodes within one query).
  bool collect_stats = false;
  // Epoch every heap read evaluates visibility against. The default
  // (rel::kEpochMax, "latest") is writer context: reads see all stamped
  // rows including the in-flight batch. Snapshot readers pass the epoch
  // of a live rel::Snapshot — the caller owns the snapshot and must keep
  // it alive for the whole execution; the executor only consumes the
  // number. Index probes additionally re-verify the probed predicate
  // against the visible tuple (indexes are single-version).
  uint64_t snapshot_epoch = rel::kEpochMax;
};

// Plan executor. The primary pipeline is batched: operators produce and
// consume RowBatch buffers, predicates/projections run as slot-bound
// expression programs (CompiledExpr), and a row budget flows down through
// row-preserving operators so LIMIT over an index path still touches
// ~limit rows. Blocking operators (sort, hash-join build, aggregate,
// distinct) materialize internally. The pre-batching row-at-a-time path
// is retained as a differential oracle and as bench_pipeline's baseline.
class Executor {
 public:
  explicit Executor(rel::Database* db, ExecutorOptions options = {})
      : db_(db), options_(options) {}

  using RowSink = std::function<bool(const rel::Tuple&)>;
  // Receives each output batch; may narrow its selection in place but must
  // not keep references past the call. Returns false to stop early.
  using BatchSink = std::function<bool(rel::RowBatch&)>;

  // Streams the plan's output batches into `sink` (primary path).
  common::Status ExecuteBatched(const PlanNode& plan, const BatchSink& sink);

  // Convenience: materializes all output rows (batched underneath).
  common::Result<std::vector<rel::Tuple>> ExecuteToVector(
      const PlanNode& plan);

  // Reference tuple-at-a-time executor: rows cross a per-row sink and
  // expressions are evaluated by walking the AST. Kept for differential
  // testing and as the baseline bench_pipeline measures against.
  common::Status ExecuteRowAtATime(const PlanNode& plan, const RowSink& sink);

 private:
  // --- batched pipeline; `budget` = max rows the consumer accepts
  // (-1 unlimited), honored by leaf scans for early termination ---
  // ExecB wraps DispatchB with the per-operator stats collection
  // (collect_stats): output rows/batches are counted before the parent
  // sink sees them, so LIMIT-driven early termination still leaves every
  // operator's counters finalized.
  common::Status ExecB(const PlanNode& plan, const BatchSink& sink,
                       int64_t budget);
  common::Status DispatchB(const PlanNode& plan, const BatchSink& sink,
                           int64_t budget);
  common::Status ExecScanB(const PlanNode& plan, const BatchSink& sink,
                           int64_t budget);
  // `pred`, when set, is a filter fused into the scan at execution time:
  // workers evaluate it and rejected rows never enter a batch.
  common::Status ExecParallelScanB(const PlanNode& plan,
                                   const BatchSink& sink, int64_t budget,
                                   const CompiledExpr* pred = nullptr);
  common::Status ExecIndexScanB(const PlanNode& plan, const BatchSink& sink,
                                int64_t budget);
  common::Status ExecKeywordScanB(const PlanNode& plan, const BatchSink& sink,
                                  int64_t budget);
  common::Status ExecFilterB(const PlanNode& plan, const BatchSink& sink);
  common::Status ExecProjectB(const PlanNode& plan, const BatchSink& sink,
                              int64_t budget);
  // `residual`, when set, is a parent Filter fused into the join: it is
  // evaluated on each candidate (left, right) pair via EvalPairRef, and
  // failing pairs are never concatenated.
  common::Status ExecNestedLoopJoinB(const PlanNode& plan,
                                     const BatchSink& sink,
                                     const CompiledExpr* residual = nullptr);
  common::Status ExecHashJoinB(const PlanNode& plan, const BatchSink& sink,
                               const CompiledExpr* residual = nullptr);
  common::Status ExecIndexNLJoinB(const PlanNode& plan,
                                  const BatchSink& sink,
                                  const CompiledExpr* residual = nullptr);
  common::Status ExecSortB(const PlanNode& plan, const BatchSink& sink);
  common::Status ExecLimitB(const PlanNode& plan, const BatchSink& sink);
  common::Status ExecAggregateB(const PlanNode& plan, const BatchSink& sink);
  common::Status ExecDistinctB(const PlanNode& plan, const BatchSink& sink);

  // --- row-at-a-time reference path ---
  common::Status ExecScanRow(const PlanNode& plan, const RowSink& sink);
  common::Status ExecIndexScanRow(const PlanNode& plan, const RowSink& sink);
  common::Status ExecKeywordScanRow(const PlanNode& plan,
                                    const RowSink& sink);
  common::Status ExecFilterRow(const PlanNode& plan, const RowSink& sink);
  common::Status ExecProjectRow(const PlanNode& plan, const RowSink& sink);
  common::Status ExecNestedLoopJoinRow(const PlanNode& plan,
                                       const RowSink& sink);
  common::Status ExecHashJoinRow(const PlanNode& plan, const RowSink& sink);
  common::Status ExecIndexNLJoinRow(const PlanNode& plan,
                                    const RowSink& sink);
  common::Status ExecSortRow(const PlanNode& plan, const RowSink& sink);
  common::Status ExecLimitRow(const PlanNode& plan, const RowSink& sink);
  common::Status ExecAggregateRow(const PlanNode& plan, const RowSink& sink);
  common::Status ExecDistinctRow(const PlanNode& plan, const RowSink& sink);

  common::Result<std::vector<rel::Tuple>> CollectRows(const PlanNode& plan);

  // The pool this executor fans out on (options_.pool or the global one).
  exec::WorkerPool* Pool() const;
  // Worker-slot count a parallel-annotated operator actually gets: 1 when
  // the plan carries no degree, the input is below the runtime row
  // threshold, or the pool has no spare width; otherwise the pool's
  // admitted share (capped at the plan's degree).
  size_t EffectiveDegree(const PlanNode& plan, size_t input_rows) const;

  // Strided cooperative deadline probe for hot loops: one counter increment
  // per call, one clock read every 1024 calls. Sticky once expired.
  bool DeadlineHit();
  common::Status DeadlineStatus() const;

  rel::Database* db_;
  ExecutorOptions options_;
  uint64_t deadline_probe_ = 0;
  bool deadline_hit_ = false;
};

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_EXECUTOR_H_
