#include "sql/physical_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>

#include "sql/expr_eval.h"
#include "sql/rewriter.h"

namespace xomatiq::sql {

using common::Result;
using common::Status;
using rel::IndexEntry;
using rel::IndexKind;
using rel::Schema;
using rel::TableStats;
using rel::Value;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int Popcount(uint64_t v) {
  int n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
}

void CollectRefs(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    out->push_back(&e);
    return;
  }
  if (e.left) CollectRefs(*e.left, out);
  if (e.right) CollectRefs(*e.right, out);
  if (e.extra) CollectRefs(*e.extra, out);
  for (const ExprPtr& item : e.list) CollectRefs(*item, out);
}

// Degree the planner may hand a parallel operator: the configured override
// or hardware concurrency; 0 = parallelism unavailable, stay serial.
int ConfiguredDegree(const PlannerOptions& options) {
  int degree = options.parallel_degree;
  if (degree <= 0) {
    degree = static_cast<int>(std::thread::hardware_concurrency());
  }
  return degree >= 2 ? degree : 0;
}

// Cost-based per-operator DOP: annotate when the fanned-out work beats
// doing it serially despite the startup toll. Returns the cost of the
// cheaper alternative and records the degree on `node` when parallel wins.
double PriceMaybeParallel(const CostModel& cm, const PlannerOptions& options,
                          double serial_work, double merge_work,
                          PlanNode* node) {
  int degree = ConfiguredDegree(options);
  if (degree < 2) return serial_work;
  double parallel =
      cm.parallel_startup + serial_work / degree + merge_work;
  if (parallel >= serial_work) return serial_work;
  node->parallel_degree = degree;
  return parallel;
}

}  // namespace

// Per-relation planning state: statistics, pushed-predicate selectivities
// and the chosen (cheapest) access path.
struct CostBasedPlanner::RelInfo {
  const LogicalOp* get = nullptr;
  const rel::Table* table = nullptr;
  std::shared_ptr<const TableStats> stats;
  double base_rows = 1;      // max(1, row_count): keeps ratios finite
  double filtered_rows = 1;  // after every pushed conjunct
  std::vector<double> pushed_sel;

  PlanKind access_kind = PlanKind::kSeqScan;
  const IndexEntry* index = nullptr;
  std::vector<Value> eq_key;
  std::optional<Value> lo;
  bool lo_inclusive = true;
  std::optional<Value> hi;
  bool hi_inclusive = true;
  std::string keyword;
  int parallel_degree = 0;
  std::vector<bool> consumed;  // pushed conjuncts consumed by the access
  double access_out_rows = 1;  // rows the access node itself emits
  double access_cost = 0;      // access + residual-filter evaluation
};

// One cross-relation conjunct with its relation mask and selectivity.
struct CostBasedPlanner::JoinConjunct {
  const Expr* expr = nullptr;
  uint64_t mask = 0;
  double selectivity = CardinalityEstimator::kDefaultSel;
  bool equi = false;             // col = col across two relations
  size_t left_rel = 0, right_rel = 0;
  std::string left_col, right_col;  // as written (possibly qualified)
};

// One join in the chosen left-deep order.
struct CostBasedPlanner::JoinStep {
  size_t rel = 0;
  PlanKind method = PlanKind::kNestedLoopJoin;
  const IndexEntry* inl_index = nullptr;
  size_t inl_conjunct = SIZE_MAX;
  double join_rows = 0;  // estimate out of the join node itself
  double cost = 0;       // cumulative cost through this step
  double after_rows = 0; // estimate after residual conjuncts apply
};

// Chooses the cheapest access path for one relation given its pushed
// predicates, writing the choice into `rel`. Mirrors the rule-based
// planner's access-path menu but prices every alternative instead of
// applying a fixed preference order.
void CostBasedPlanner::ChooseAccess(const CostModel& cm,
                                    const std::string& table_name,
                                    RelInfo* rel) {
  const std::vector<ExprPtr>& pushed = rel->get->pushed;
  double base = rel->base_rows;
  double num_pushed = static_cast<double>(pushed.size());

  std::vector<EqPred> eqs;
  std::vector<RangePred> ranges;
  std::vector<ContainsPred> contains;
  for (size_t i = 0; i < pushed.size(); ++i) {
    ClassifyPredicate(*pushed[i], i, &eqs, &ranges, &contains);
  }

  // Baseline: sequential scan evaluating every pushed predicate.
  double best_cost = base * cm.seq_row + base * cm.pred_eval * num_pushed;
  rel->access_kind = PlanKind::kSeqScan;
  rel->access_out_rows = rel->filtered_rows;
  rel->consumed.assign(pushed.size(), false);

  auto consider = [&](double cost, PlanKind kind, const IndexEntry* index,
                      double out_rows, const std::vector<size_t>& used) {
    if (cost >= best_cost) return;
    best_cost = cost;
    rel->access_kind = kind;
    rel->index = index;
    rel->access_out_rows = out_rows;
    rel->consumed.assign(pushed.size(), false);
    for (size_t ci : used) rel->consumed[ci] = true;
    rel->eq_key.clear();
    rel->lo.reset();
    rel->hi.reset();
    rel->lo_inclusive = rel->hi_inclusive = true;
    rel->keyword.clear();
  };

  if (rel->table->num_slots() >= options_.parallel_scan_threshold) {
    int degree = options_.parallel_degree;
    if (degree <= 0) {
      degree = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (degree >= 2) {
      double cost = cm.parallel_startup +
                    (base * cm.seq_row + base * cm.pred_eval * num_pushed) /
                        degree;
      if (cost < best_cost) {
        consider(cost, PlanKind::kParallelSeqScan, nullptr,
                 rel->filtered_rows, {});
        rel->parallel_degree = degree;
      }
    }
  }

  const auto* indexes = db_->IndexesOn(table_name);
  if (indexes != nullptr) {
    for (const auto& entry : *indexes) {
      if (entry->def.kind == IndexKind::kInverted) {
        for (const ContainsPred& cp : contains) {
          if (cp.bare_column != entry->def.columns[0]) continue;
          double sel = rel->pushed_sel[cp.conjunct_index];
          double match = base * sel;
          double cost = cm.index_probe + match * cm.keyword_row +
                        match * cm.pred_eval * (num_pushed - 1);
          std::vector<size_t> used = {cp.conjunct_index};
          if (cost < best_cost) {
            consider(cost, PlanKind::kKeywordScan, entry.get(), match, used);
            rel->keyword = cp.keyword;
          }
        }
        continue;
      }
      // Longest equality prefix over this index.
      std::vector<Value> key;
      std::vector<size_t> used;
      double sel_prefix = 1.0;
      for (const std::string& col : entry->def.columns) {
        const EqPred* found = nullptr;
        for (const EqPred& ep : eqs) {
          if (ep.bare_column == col) {
            found = &ep;
            break;
          }
        }
        if (found == nullptr) break;
        key.push_back(found->literal);
        used.push_back(found->conjunct_index);
        sel_prefix *= rel->pushed_sel[found->conjunct_index];
      }
      bool usable = !key.empty() &&
                    (entry->def.kind == IndexKind::kBTree ||
                     key.size() == entry->def.columns.size());
      if (usable) {
        double probe = entry->def.kind == IndexKind::kBTree
                           ? cm.btree_descend
                           : cm.index_probe;
        double match = base * sel_prefix;
        double residual = num_pushed - static_cast<double>(used.size());
        double cost =
            probe + match * cm.index_row + match * cm.pred_eval * residual;
        if (cost < best_cost) {
          std::vector<Value> key_copy = key;
          consider(cost, PlanKind::kIndexScan, entry.get(), match, used);
          rel->eq_key = std::move(key_copy);
        }
      }
      // Range over a single-column btree.
      if (entry->def.kind == IndexKind::kBTree &&
          entry->def.columns.size() == 1) {
        for (const RangePred& rp : ranges) {
          if (rp.bare_column != entry->def.columns[0]) continue;
          double sel = rel->pushed_sel[rp.conjunct_index];
          double match = base * sel;
          double residual =
              num_pushed - (rp.keep_conjunct ? 0.0 : 1.0);
          double cost = cm.btree_descend + match * cm.index_row +
                        match * cm.pred_eval * residual;
          if (cost < best_cost) {
            std::vector<size_t> used;
            if (!rp.keep_conjunct) used.push_back(rp.conjunct_index);
            consider(cost, PlanKind::kIndexScan, entry.get(), match, used);
            rel->lo = rp.lo;
            rel->lo_inclusive = rp.lo_inclusive;
            rel->hi = rp.hi;
            rel->hi_inclusive = rp.hi_inclusive;
          }
        }
      }
    }
  }
  rel->access_cost = best_cost;
}

Result<PlanPtr> CostBasedPlanner::BuildAccessPlan(const LogicalOp& get,
                                                  RelInfo* rel) {
  auto access = std::make_unique<PlanNode>();
  access->kind = rel->access_kind;
  access->table = get.table;
  access->alias = get.alias;
  access->schema = get.schema;
  access->index = rel->index;
  access->eq_key = rel->eq_key;
  access->lo = rel->lo;
  access->lo_inclusive = rel->lo_inclusive;
  access->hi = rel->hi;
  access->hi_inclusive = rel->hi_inclusive;
  access->keyword = rel->keyword;
  if (rel->access_kind == PlanKind::kParallelSeqScan) {
    access->parallel_degree = rel->parallel_degree;
  }
  access->est_rows = rel->access_out_rows;
  access->est_cost = rel->access_cost;

  std::vector<ExprPtr> residual;
  for (size_t i = 0; i < get.pushed.size(); ++i) {
    if (!rel->consumed[i]) residual.push_back(get.pushed[i]->Clone());
  }
  PlanPtr plan = std::move(access);
  if (!residual.empty()) {
    ExprPtr pred = AndAll(std::move(residual));
    XQ_RETURN_IF_ERROR(Bind(pred.get(), plan->schema));
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->schema = plan->schema;
    filter->predicate = std::move(pred);
    filter->est_rows = rel->filtered_rows;
    filter->est_cost = rel->access_cost;
    filter->children.push_back(std::move(plan));
    plan = std::move(filter);
  }
  return plan;
}

Result<PlanPtr> CostBasedPlanner::LowerJoin(const LogicalOp& join) {
  const CostModel cm;
  const size_t n = join.children.size();
  if (n > 63) {
    return Status::InvalidArgument("too many relations in join");
  }

  // --- per-relation stats, selectivities, access paths ------------------
  std::vector<RelInfo> rels(n);
  for (size_t i = 0; i < n; ++i) {
    RelInfo& rel = rels[i];
    rel.get = join.children[i].get();
    XQ_ASSIGN_OR_RETURN(rel.table, db_->GetTable(rel.get->table));
    rel.stats = db_->StatsFor(rel.get->table);
    if (rel.stats == nullptr) {
      return Status::Internal("no statistics for table " + rel.get->table);
    }
    rel.base_rows = std::max<double>(1.0, static_cast<double>(
                                              rel.stats->row_count));
    rel.filtered_rows = rel.base_rows;
    for (const ExprPtr& c : rel.get->pushed) {
      double sel = CardinalityEstimator::Selectivity(*c, rel.get->schema,
                                                     *rel.stats);
      rel.pushed_sel.push_back(sel);
      rel.filtered_rows *= sel;
    }
    rel.filtered_rows = std::max(rel.filtered_rows, 1e-3);
    ChooseAccess(cm, rel.get->table, &rel);
  }

  // --- cross-relation conjuncts: masks, selectivities, equi shapes ------
  std::vector<JoinConjunct> jconjs;
  for (const ExprPtr& c : join.conjuncts) {
    JoinConjunct jc;
    jc.expr = c.get();
    std::vector<const Expr*> refs;
    CollectRefs(*c, &refs);
    for (const Expr* ref : refs) {
      for (size_t i = 0; i < n; ++i) {
        if (rels[i].get->schema.FindColumn(ref->column_name).has_value()) {
          jc.mask |= uint64_t{1} << i;
          break;
        }
      }
    }
    if (c->kind == ExprKind::kBinary && c->bin_op == BinaryOp::kEq &&
        c->left->kind == ExprKind::kColumnRef &&
        c->right->kind == ExprKind::kColumnRef) {
      size_t lrel = n, rrel = n;
      for (size_t i = 0; i < n; ++i) {
        if (rels[i].get->schema.FindColumn(c->left->column_name)) lrel = i;
        if (rels[i].get->schema.FindColumn(c->right->column_name)) rrel = i;
      }
      if (lrel < n && rrel < n && lrel != rrel) {
        jc.equi = true;
        jc.left_rel = lrel;
        jc.right_rel = rrel;
        jc.left_col = c->left->column_name;
        jc.right_col = c->right->column_name;
        size_t lcol =
            rels[lrel].get->schema.FindColumn(c->left->column_name).value();
        size_t rcol =
            rels[rrel].get->schema.FindColumn(c->right->column_name).value();
        jc.selectivity = CardinalityEstimator::EquiJoinSelectivity(
            *rels[lrel].stats, lcol, *rels[rrel].stats, rcol);
      }
    }
    jconjs.push_back(std::move(jc));
  }

  // Estimated output rows for a relation subset: independent predicates,
  // every conjunct contained in the subset applied once.
  auto rows_of = [&](uint64_t mask) {
    double rows = 1.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) rows *= rels[i].filtered_rows;
    }
    for (const JoinConjunct& jc : jconjs) {
      if (jc.mask != 0 && (jc.mask & ~mask) == 0) rows *= jc.selectivity;
    }
    return std::max(rows, 1e-3);
  };

  struct Entry {
    double cost = kInf;
    double rows = 0;
    size_t last = SIZE_MAX;
    uint64_t prev = 0;
    PlanKind method = PlanKind::kNestedLoopJoin;
    const IndexEntry* inl_index = nullptr;
    size_t inl_conjunct = SIZE_MAX;
    double join_rows = 0;
  };

  // Best extension of `cur` (covering `mask`) by relation j, over the
  // three join methods. A conjunct "connects" when it needs both sides.
  auto extend = [&](const Entry& cur, uint64_t mask, size_t j) {
    const uint64_t bj = uint64_t{1} << j;
    Entry out;
    out.last = j;
    out.prev = mask;
    out.rows = rows_of(mask | bj);
    double after = out.rows;

    std::vector<size_t> connecting_equis;
    for (size_t c = 0; c < jconjs.size(); ++c) {
      const JoinConjunct& jc = jconjs[c];
      if (jc.mask == 0 || (jc.mask & ~(mask | bj)) != 0) continue;
      if (!(jc.mask & bj) || !(jc.mask & mask)) continue;
      if (jc.equi) connecting_equis.push_back(c);
    }

    // Nested loop (always possible; the only option for cross products).
    out.method = PlanKind::kNestedLoopJoin;
    out.join_rows = cur.rows * rels[j].filtered_rows;
    out.cost = cur.cost + rels[j].access_cost +
               cur.rows * rels[j].filtered_rows * cm.nl_pair +
               after * cm.out_row;

    if (!connecting_equis.empty()) {
      // Hash join: build the new relation, probe with the accumulated side.
      double sel = 1.0;
      for (size_t c : connecting_equis) sel *= jconjs[c].selectivity;
      double join_rows = cur.rows * rels[j].filtered_rows * sel;
      double cost = cur.cost + rels[j].access_cost +
                    rels[j].filtered_rows * cm.hash_build +
                    cur.rows * cm.hash_probe + after * cm.out_row;
      if (cost < out.cost) {
        out.cost = cost;
        out.method = PlanKind::kHashJoin;
        out.join_rows = join_rows;
        out.inl_index = nullptr;
        out.inl_conjunct = SIZE_MAX;
      }
      // Index nested loop: probe an index on the new relation's join
      // column per outer row; its pushed predicates filter post-join.
      for (size_t c : connecting_equis) {
        const JoinConjunct& jc = jconjs[c];
        const std::string& j_col =
            jc.right_rel == j ? jc.right_col : jc.left_col;
        const IndexEntry* idx = db_->FindIndex(
            rels[j].get->table, {BareName(j_col)}, IndexKind::kHash);
        double probe = cm.index_probe;
        if (idx == nullptr) {
          idx = db_->FindIndex(rels[j].get->table, {BareName(j_col)},
                               IndexKind::kBTree);
          probe = cm.btree_descend;
        }
        if (idx == nullptr) continue;
        double matches = cur.rows * rels[j].base_rows * jc.selectivity;
        double num_pushed = static_cast<double>(rels[j].get->pushed.size());
        double inl_cost = cur.cost + cur.rows * probe +
                          matches * cm.index_row +
                          matches * cm.pred_eval * num_pushed +
                          after * cm.out_row;
        if (inl_cost < out.cost) {
          out.cost = inl_cost;
          out.method = PlanKind::kIndexNLJoin;
          out.inl_index = idx;
          out.inl_conjunct = c;
          out.join_rows = matches;
        }
      }
    }
    return out;
  };

  // Relations j that some conjunct links to the subset `mask`; empty means
  // only cross products remain.
  auto connected_rels = [&](uint64_t mask) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      const uint64_t bj = uint64_t{1} << j;
      if (mask & bj) continue;
      for (const JoinConjunct& jc : jconjs) {
        if (jc.mask != 0 && (jc.mask & ~(mask | bj)) == 0 &&
            (jc.mask & bj) && (jc.mask & mask)) {
          out.push_back(j);
          break;
        }
      }
    }
    return out;
  };

  // --- join-order search ------------------------------------------------
  size_t first_rel = 0;
  std::vector<JoinStep> steps;
  if (n == 1) {
    // Single relation: nothing to order.
  } else if (n <= options_.dp_join_limit) {
    // Exact DP over subsets, left-deep. Masks are visited in increasing
    // numeric order, which is a valid topological order because every
    // extension adds a bit.
    std::vector<Entry> dp(uint64_t{1} << n);
    for (size_t i = 0; i < n; ++i) {
      Entry& e = dp[uint64_t{1} << i];
      e.cost = rels[i].access_cost;
      e.rows = rels[i].filtered_rows;
      e.last = i;
      e.prev = 0;
    }
    const uint64_t full = (uint64_t{1} << n) - 1;
    for (uint64_t mask = 1; mask < full; ++mask) {
      if (dp[mask].cost == kInf) continue;
      std::vector<size_t> candidates = connected_rels(mask);
      if (candidates.empty()) {
        for (size_t j = 0; j < n; ++j) {
          if (!(mask & (uint64_t{1} << j))) candidates.push_back(j);
        }
      }
      for (size_t j : candidates) {
        Entry e = extend(dp[mask], mask, j);
        uint64_t next = mask | (uint64_t{1} << j);
        if (e.cost < dp[next].cost) dp[next] = e;
      }
    }
    // Backtrack the winning chain.
    uint64_t mask = full;
    std::vector<Entry> chain;
    while (dp[mask].prev != 0) {
      chain.push_back(dp[mask]);
      mask = dp[mask].prev;
    }
    first_rel = dp[mask].last;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      JoinStep s;
      s.rel = it->last;
      s.method = it->method;
      s.inl_index = it->inl_index;
      s.inl_conjunct = it->inl_conjunct;
      s.join_rows = it->join_rows;
      s.cost = it->cost;
      s.after_rows = it->rows;
      steps.push_back(s);
    }
  } else {
    // Greedy cheapest-extension beyond the DP limit.
    first_rel = 0;
    double best_seed = kInf;
    for (size_t i = 0; i < n; ++i) {
      double score = rels[i].access_cost + rels[i].filtered_rows;
      if (score < best_seed) {
        best_seed = score;
        first_rel = i;
      }
    }
    Entry cur;
    cur.cost = rels[first_rel].access_cost;
    cur.rows = rels[first_rel].filtered_rows;
    cur.last = first_rel;
    uint64_t mask = uint64_t{1} << first_rel;
    while (Popcount(mask) < static_cast<int>(n)) {
      std::vector<size_t> candidates = connected_rels(mask);
      if (candidates.empty()) {
        for (size_t j = 0; j < n; ++j) {
          if (!(mask & (uint64_t{1} << j))) candidates.push_back(j);
        }
      }
      Entry best;
      for (size_t j : candidates) {
        Entry e = extend(cur, mask, j);
        if (e.cost < best.cost) best = e;
      }
      JoinStep s;
      s.rel = best.last;
      s.method = best.method;
      s.inl_index = best.inl_index;
      s.inl_conjunct = best.inl_conjunct;
      s.join_rows = best.join_rows;
      s.cost = best.cost;
      s.after_rows = best.rows;
      steps.push_back(s);
      mask |= uint64_t{1} << best.last;
      cur = best;
    }
  }

  reordered_ = first_rel != 0;
  for (size_t k = 0; k < steps.size(); ++k) {
    if (steps[k].rel != k + 1) reordered_ = true;
  }

  // --- physical construction -------------------------------------------
  // The conjunct pool mirrors the rule-based planner: clones consumed as
  // joins bind them, leftovers applied as filters the moment they bind.
  std::vector<ExprPtr> pool;
  pool.reserve(jconjs.size());
  for (const ExprPtr& c : join.conjuncts) pool.push_back(c->Clone());

  XQ_ASSIGN_OR_RETURN(PlanPtr plan,
                      BuildAccessPlan(*rels[first_rel].get, &rels[first_rel]));

  auto apply_bindable = [&](PlanPtr p, double est_rows,
                            double est_cost) -> Result<PlanPtr> {
    std::vector<ExprPtr> applicable;
    for (ExprPtr& c : pool) {
      if (c != nullptr && BindableAgainst(*c, p->schema)) {
        applicable.push_back(std::move(c));
        c = nullptr;
      }
    }
    if (applicable.empty()) return PlanPtr(std::move(p));
    ExprPtr pred = AndAll(std::move(applicable));
    XQ_RETURN_IF_ERROR(Bind(pred.get(), p->schema));
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->schema = p->schema;
    filter->predicate = std::move(pred);
    filter->est_rows = est_rows;
    filter->est_cost = est_cost;
    filter->children.push_back(std::move(p));
    return PlanPtr(std::move(filter));
  };

  for (const JoinStep& step : steps) {
    RelInfo& rel = rels[step.rel];
    const Schema& qualified = rel.get->schema;
    auto jnode = std::make_unique<PlanNode>();
    jnode->schema = Schema::Concat(plan->schema, qualified);
    jnode->est_rows = step.join_rows;
    jnode->est_cost = step.cost;

    if (step.method == PlanKind::kIndexNLJoin) {
      const ExprPtr& c = pool[step.inl_conjunct];
      jnode->kind = PlanKind::kIndexNLJoin;
      jnode->table = rel.get->table;
      jnode->alias = rel.get->alias;
      jnode->index = step.inl_index;
      // The outer key is whichever equality side binds the accumulated
      // plan (the other side is the inner index column).
      ExprPtr outer_key = BindableAgainst(*c->left, plan->schema)
                              ? c->left->Clone()
                              : c->right->Clone();
      XQ_RETURN_IF_ERROR(Bind(outer_key.get(), plan->schema));
      jnode->outer_key_exprs.push_back(std::move(outer_key));
      pool[step.inl_conjunct] = nullptr;
      jnode->children.push_back(std::move(plan));
      plan = std::move(jnode);
      // The discarded access path's predicates re-enter the pool so
      // apply_bindable turns them into a post-join filter.
      for (const ExprPtr& p : rel.get->pushed) pool.push_back(p->Clone());
    } else if (step.method == PlanKind::kHashJoin) {
      XQ_ASSIGN_OR_RETURN(PlanPtr access, BuildAccessPlan(*rel.get, &rel));
      jnode->kind = PlanKind::kHashJoin;
      for (ExprPtr& c : pool) {
        if (c == nullptr) continue;
        const Expr& e = *c;
        if (e.kind != ExprKind::kBinary || e.bin_op != BinaryOp::kEq) {
          continue;
        }
        bool l_on_left = BindableAgainst(*e.left, plan->schema);
        bool l_on_right = BindableAgainst(*e.left, qualified);
        bool r_on_left = BindableAgainst(*e.right, plan->schema);
        bool r_on_right = BindableAgainst(*e.right, qualified);
        ExprPtr lk, rk;
        if (l_on_left && !l_on_right && r_on_right && !r_on_left) {
          lk = e.left->Clone();
          rk = e.right->Clone();
        } else if (r_on_left && !r_on_right && l_on_right && !l_on_left) {
          lk = e.right->Clone();
          rk = e.left->Clone();
        } else {
          continue;
        }
        XQ_RETURN_IF_ERROR(Bind(lk.get(), plan->schema));
        XQ_RETURN_IF_ERROR(Bind(rk.get(), qualified));
        jnode->left_keys.push_back(std::move(lk));
        jnode->right_keys.push_back(std::move(rk));
        c = nullptr;
      }
      jnode->children.push_back(std::move(plan));
      jnode->children.push_back(std::move(access));
      // Per-operator DOP: parallel build/probe when the fanned-out hash
      // work amortizes the startup toll; small joins stay serial.
      {
        const CostModel cm;
        double build_rows = std::max(0.0, jnode->children[1]->est_rows);
        double probe_rows = std::max(0.0, jnode->children[0]->est_rows);
        PriceMaybeParallel(
            cm, options_,
            build_rows * cm.hash_build + probe_rows * cm.hash_probe, 0.0,
            jnode.get());
      }
      plan = std::move(jnode);
    } else {
      XQ_ASSIGN_OR_RETURN(PlanPtr access, BuildAccessPlan(*rel.get, &rel));
      jnode->kind = PlanKind::kNestedLoopJoin;
      jnode->children.push_back(std::move(plan));
      jnode->children.push_back(std::move(access));
      plan = std::move(jnode);
    }
    XQ_ASSIGN_OR_RETURN(
        plan, apply_bindable(std::move(plan), step.after_rows, step.cost));
  }

  // Anything left in the pool failed to bind anywhere — the binder
  // validated against the full schema, so this cannot happen; guard to
  // keep the invariant visible.
  for (const ExprPtr& c : pool) {
    if (c != nullptr) {
      return Status::Internal("unplaced join conjunct: " + c->ToString());
    }
  }
  return plan;
}

Result<PlanPtr> CostBasedPlanner::Lower(const LogicalOp& op) {
  const CostModel cm;
  if (op.kind == LogicalKind::kJoin) return LowerJoin(op);
  if (op.kind == LogicalKind::kGet) {
    return Status::Internal("bare Get outside a Join");
  }
  XQ_ASSIGN_OR_RETURN(PlanPtr child, Lower(*op.children[0]));
  double in_rows = child->est_rows >= 0 ? child->est_rows : 1000.0;
  double cost = child->est_cost >= 0 ? child->est_cost : 0.0;
  double out_rows = in_rows;

  auto node = std::make_unique<PlanNode>();
  // Pass-through operators (Filter/Sort/Limit/Distinct) emit their child's
  // rows unchanged, so they must advertise the child's *physical* schema —
  // join reordering makes it differ from the logical FROM-order schema.
  // Only Project and Aggregate define a new row layout (op.schema).
  node->schema = (op.kind == LogicalKind::kProject ||
                  op.kind == LogicalKind::kAggregate)
                     ? op.schema
                     : child->schema;
  switch (op.kind) {
    case LogicalKind::kFilter: {
      node->kind = PlanKind::kFilter;
      node->predicate = op.predicate->Clone();
      XQ_RETURN_IF_ERROR(Bind(node->predicate.get(), child->schema));
      cost += in_rows * cm.pred_eval;
      out_rows = std::max(1.0, in_rows * CardinalityEstimator::kDefaultSel);
      break;
    }
    case LogicalKind::kProject: {
      node->kind = PlanKind::kProject;
      for (const ExprPtr& e : op.exprs) {
        ExprPtr copy = e->Clone();
        XQ_RETURN_IF_ERROR(Bind(copy.get(), child->schema));
        node->project_exprs.push_back(std::move(copy));
      }
      cost += in_rows * cm.out_row;
      break;
    }
    case LogicalKind::kAggregate: {
      node->kind = PlanKind::kAggregate;
      for (const ExprPtr& g : op.group_exprs) {
        ExprPtr copy = g->Clone();
        XQ_RETURN_IF_ERROR(Bind(copy.get(), child->schema));
        node->group_exprs.push_back(std::move(copy));
      }
      for (const AggSpec& spec : op.aggs) {
        AggSpec copy;
        copy.func = spec.func;
        if (spec.arg) {
          copy.arg = spec.arg->Clone();
          XQ_RETURN_IF_ERROR(Bind(copy.arg.get(), child->schema));
        }
        node->aggs.push_back(std::move(copy));
      }
      cost += PriceMaybeParallel(cm, options_, in_rows, 0.0, node.get());
      out_rows = op.group_exprs.empty() ? 1.0 : std::max(1.0, in_rows * 0.1);
      break;
    }
    case LogicalKind::kSort: {
      node->kind = PlanKind::kSort;
      for (const SortKey& k : op.keys) {
        SortKey copy;
        copy.expr = k.expr->Clone();
        copy.desc = k.desc;
        XQ_RETURN_IF_ERROR(Bind(copy.expr.get(), child->schema));
        node->sort_keys.push_back(std::move(copy));
      }
      // Parallel alternative: per-morsel sorts share the n·log n work;
      // the serial k-way merge re-touches every row (≈log of the run
      // count, a small constant, folded into the 3x factor).
      cost += PriceMaybeParallel(
          cm, options_,
          in_rows * std::log2(std::max(in_rows, 2.0)) * cm.sort_row_log,
          in_rows * cm.sort_row_log * 3.0, node.get());
      break;
    }
    case LogicalKind::kLimit: {
      node->kind = PlanKind::kLimit;
      node->limit = op.limit;
      node->offset = op.offset;
      if (op.limit >= 0) {
        out_rows = std::min(in_rows, static_cast<double>(op.limit));
      }
      break;
    }
    case LogicalKind::kDistinct: {
      node->kind = PlanKind::kDistinct;
      cost += PriceMaybeParallel(cm, options_, in_rows, 0.0, node.get());
      out_rows = std::max(1.0, in_rows * 0.5);
      break;
    }
    default:
      return Status::Internal("unexpected logical node in unary chain");
  }
  node->est_rows = out_rows;
  node->est_cost = cost;
  node->children.push_back(std::move(child));
  return PlanPtr(std::move(node));
}

}  // namespace xomatiq::sql
