#include "sql/parser.h"

#include "sql/lexer.h"

namespace xomatiq::sql {

using common::Result;
using common::Status;

namespace {

// Recursive-descent parser over a pre-lexed token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();
  Result<ExprPtr> ParseExprPublic() {
    XQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool MatchKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchSymbol(std::string_view sym) {
    if (Peek().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError("expected " + std::string(kw) + " near '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!MatchSymbol(sym)) {
      return Status::ParseError("expected '" + std::string(sym) + "' near '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected identifier near '" + Peek().text +
                                "' at offset " + std::to_string(Peek().offset));
    }
    return Advance().text;
  }
  Status ExpectEnd() {
    MatchSymbol(";");
    if (Peek().type != TokenType::kEof) {
      return Status::ParseError("trailing input near '" + Peek().text +
                                "' at offset " + std::to_string(Peek().offset));
    }
    return Status::OK();
  }

  Result<Statement> ParseCreate();
  Result<CreateTableStmt> ParseCreateTable();
  Result<CreateIndexStmt> ParseCreateIndex(bool unique);
  Result<DropStmt> ParseDrop();
  Result<InsertStmt> ParseInsert();
  Result<SelectStmt> ParseSelect();
  Result<DeleteStmt> ParseDelete();
  Result<UpdateStmt> ParseUpdate();

  Result<TableRef> ParseTableRef();
  Result<rel::ValueType> ParseType();

  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (Peek().IsKeyword("EXPLAIN")) {
    Advance();
    stmt.kind = StatementKind::kExplain;
    if (Peek().IsKeyword("ANALYZE")) {
      Advance();
      stmt.analyze = true;
    }
    XQ_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("ANALYZE")) {
    Advance();
    stmt.kind = StatementKind::kAnalyze;
    if (Peek().type == TokenType::kIdentifier) {
      XQ_ASSIGN_OR_RETURN(stmt.analyze_stmt.table, ExpectIdentifier());
    }
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("STATS")) {
    Advance();
    stmt.kind = StatementKind::kStats;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("SLOW")) {
    Advance();
    if (!Peek().IsKeyword("QUERIES")) {
      return Status::ParseError("expected QUERIES after SLOW");
    }
    Advance();
    stmt.kind = StatementKind::kSlowQueries;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("WAL")) {
    Advance();
    if (!Peek().IsKeyword("STATUS")) {
      return Status::ParseError("expected STATUS after WAL");
    }
    Advance();
    stmt.kind = StatementKind::kWalStatus;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("RESET")) {
    Advance();
    if (!Peek().IsKeyword("STATS")) {
      return Status::ParseError("expected STATS after RESET");
    }
    Advance();
    stmt.kind = StatementKind::kResetStats;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("CREATE")) return ParseCreate();
  if (Peek().IsKeyword("DROP")) {
    XQ_ASSIGN_OR_RETURN(stmt.drop, ParseDrop());
    stmt.kind = StatementKind::kDrop;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("INSERT")) {
    XQ_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    stmt.kind = StatementKind::kInsert;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("SELECT")) {
    XQ_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    stmt.kind = StatementKind::kSelect;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("DELETE")) {
    XQ_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
    stmt.kind = StatementKind::kDelete;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("UPDATE")) {
    XQ_ASSIGN_OR_RETURN(stmt.update, ParseUpdate());
    stmt.kind = StatementKind::kUpdate;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  return Status::ParseError("expected a statement, got '" + Peek().text + "'");
}

Result<Statement> Parser::ParseCreate() {
  Statement stmt;
  XQ_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  if (MatchKeyword("TABLE")) {
    XQ_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
    stmt.kind = StatementKind::kCreateTable;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  bool unique = MatchKeyword("UNIQUE");
  if (MatchKeyword("INDEX")) {
    XQ_ASSIGN_OR_RETURN(stmt.create_index, ParseCreateIndex(unique));
    stmt.kind = StatementKind::kCreateIndex;
    XQ_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }
  return Status::ParseError("expected TABLE or [UNIQUE] INDEX after CREATE");
}

Result<rel::ValueType> Parser::ParseType() {
  if (MatchKeyword("INT") || MatchKeyword("INTEGER")) {
    return rel::ValueType::kInt;
  }
  if (MatchKeyword("DOUBLE") || MatchKeyword("REAL")) {
    return rel::ValueType::kDouble;
  }
  if (MatchKeyword("TEXT")) return rel::ValueType::kText;
  if (MatchKeyword("VARCHAR")) {
    if (MatchSymbol("(")) {
      if (Peek().type != TokenType::kInteger) {
        return Status::ParseError("expected length after VARCHAR(");
      }
      Advance();
      XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    return rel::ValueType::kText;
  }
  return Status::ParseError("expected a column type, got '" + Peek().text +
                            "'");
}

Result<CreateTableStmt> Parser::ParseCreateTable() {
  CreateTableStmt stmt;
  XQ_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  XQ_RETURN_IF_ERROR(ExpectSymbol("("));
  do {
    ColumnDefAst col;
    XQ_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
    XQ_ASSIGN_OR_RETURN(col.type, ParseType());
    while (true) {
      if (MatchKeyword("NOT")) {
        XQ_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        col.not_null = true;
        continue;
      }
      if (MatchKeyword("PRIMARY")) {
        XQ_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        col.not_null = true;  // primary implies NOT NULL; uniqueness needs
                              // an explicit CREATE UNIQUE INDEX
        continue;
      }
      break;
    }
    stmt.columns.push_back(std::move(col));
  } while (MatchSymbol(","));
  XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
  return stmt;
}

Result<CreateIndexStmt> Parser::ParseCreateIndex(bool unique) {
  CreateIndexStmt stmt;
  stmt.unique = unique;
  XQ_ASSIGN_OR_RETURN(stmt.index, ExpectIdentifier());
  XQ_RETURN_IF_ERROR(ExpectKeyword("ON"));
  XQ_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  XQ_RETURN_IF_ERROR(ExpectSymbol("("));
  do {
    XQ_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    stmt.columns.push_back(std::move(col));
  } while (MatchSymbol(","));
  XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
  if (MatchKeyword("USING")) {
    if (MatchKeyword("BTREE")) {
      stmt.kind = rel::IndexKind::kBTree;
    } else if (MatchKeyword("HASH")) {
      stmt.kind = rel::IndexKind::kHash;
    } else if (MatchKeyword("INVERTED")) {
      stmt.kind = rel::IndexKind::kInverted;
    } else {
      return Status::ParseError("expected BTREE, HASH or INVERTED");
    }
  }
  return stmt;
}

Result<DropStmt> Parser::ParseDrop() {
  DropStmt stmt;
  XQ_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  if (MatchKeyword("TABLE")) {
    stmt.is_table = true;
  } else if (MatchKeyword("INDEX")) {
    stmt.is_table = false;
  } else {
    return Status::ParseError("expected TABLE or INDEX after DROP");
  }
  XQ_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier());
  return stmt;
}

Result<InsertStmt> Parser::ParseInsert() {
  InsertStmt stmt;
  XQ_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  XQ_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  XQ_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  if (MatchSymbol("(")) {
    do {
      XQ_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt.columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  XQ_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    XQ_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ExprPtr> row;
    do {
      XQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (MatchSymbol(","));
    XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.rows.push_back(std::move(row));
  } while (MatchSymbol(","));
  return stmt;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  XQ_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
  if (MatchKeyword("AS")) {
    XQ_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
  } else if (Peek().type == TokenType::kIdentifier) {
    ref.alias = Advance().text;
  } else {
    ref.alias = ref.table;
  }
  return ref;
}

Result<SelectStmt> Parser::ParseSelect() {
  SelectStmt stmt;
  XQ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  stmt.distinct = MatchKeyword("DISTINCT");
  do {
    SelectItem item;
    if (Peek().IsSymbol("*")) {
      Advance();
      item.is_star = true;
    } else {
      XQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        XQ_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      }
    }
    stmt.items.push_back(std::move(item));
  } while (MatchSymbol(","));
  XQ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  XQ_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
  stmt.from.push_back(std::move(first));
  while (true) {
    if (MatchSymbol(",")) {
      XQ_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt.from.push_back(std::move(ref));
      continue;
    }
    bool is_join = false;
    if (Peek().IsKeyword("JOIN")) {
      is_join = true;
      Advance();
    } else if (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN")) {
      is_join = true;
      Advance();
      Advance();
    }
    if (!is_join) break;
    JoinClause join;
    XQ_ASSIGN_OR_RETURN(join.table, ParseTableRef());
    XQ_RETURN_IF_ERROR(ExpectKeyword("ON"));
    XQ_ASSIGN_OR_RETURN(join.on, ParseExpr());
    stmt.joins.push_back(std::move(join));
  }
  if (MatchKeyword("WHERE")) {
    XQ_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    XQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      XQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.group_by.push_back(std::move(e));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("HAVING")) {
    XQ_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    XQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      XQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.desc = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kInteger) {
      return Status::ParseError("expected integer after LIMIT");
    }
    stmt.limit = Advance().int_value;
    if (MatchKeyword("OFFSET")) {
      if (Peek().type != TokenType::kInteger) {
        return Status::ParseError("expected integer after OFFSET");
      }
      stmt.offset = Advance().int_value;
    }
  }
  return stmt;
}

Result<DeleteStmt> Parser::ParseDelete() {
  DeleteStmt stmt;
  XQ_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  XQ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  XQ_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  if (MatchKeyword("WHERE")) {
    XQ_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<UpdateStmt> Parser::ParseUpdate() {
  UpdateStmt stmt;
  XQ_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  XQ_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  XQ_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    XQ_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    XQ_RETURN_IF_ERROR(ExpectSymbol("="));
    XQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt.sets.emplace_back(std::move(col), std::move(e));
  } while (MatchSymbol(","));
  if (MatchKeyword("WHERE")) {
    XQ_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

// --- expressions -------------------------------------------------------

Result<ExprPtr> Parser::ParseOr() {
  XQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    XQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  XQ_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    XQ_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    XQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  XQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // IS [NOT] NULL
  if (MatchKeyword("IS")) {
    bool negated = MatchKeyword("NOT");
    XQ_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kIsNull;
    e->negated = negated;
    e->left = std::move(left);
    return ExprPtr(std::move(e));
  }
  bool negated = false;
  if (Peek().IsKeyword("NOT") &&
      (Peek(1).IsKeyword("LIKE") || Peek(1).IsKeyword("IN") ||
       Peek(1).IsKeyword("BETWEEN"))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("LIKE")) {
    XQ_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLike;
    e->negated = negated;
    e->left = std::move(left);
    e->right = std::move(pattern);
    return ExprPtr(std::move(e));
  }
  if (MatchKeyword("IN")) {
    XQ_RETURN_IF_ERROR(ExpectSymbol("("));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kInList;
    e->negated = negated;
    e->left = std::move(left);
    do {
      XQ_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
      e->list.push_back(std::move(item));
    } while (MatchSymbol(","));
    XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ExprPtr(std::move(e));
  }
  if (MatchKeyword("BETWEEN")) {
    XQ_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
    XQ_RETURN_IF_ERROR(ExpectKeyword("AND"));
    XQ_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBetween;
    e->negated = negated;
    e->left = std::move(left);
    e->right = std::move(low);
    e->extra = std::move(high);
    return ExprPtr(std::move(e));
  }
  if (negated) {
    return Status::ParseError("dangling NOT before comparison");
  }
  struct OpMap {
    std::string_view sym;
    BinaryOp op;
  };
  static constexpr OpMap kOps[] = {
      {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
      {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
  };
  for (const OpMap& m : kOps) {
    if (Peek().IsSymbol(m.sym)) {
      Advance();
      XQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return MakeBinary(m.op, std::move(left), std::move(right));
    }
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  XQ_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Peek().IsSymbol("+")) {
      op = BinaryOp::kAdd;
    } else if (Peek().IsSymbol("-")) {
      op = BinaryOp::kSub;
    } else if (Peek().IsSymbol("||")) {
      op = BinaryOp::kConcat;
    } else {
      return left;
    }
    Advance();
    XQ_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  XQ_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Peek().IsSymbol("*")) {
      op = BinaryOp::kMul;
    } else if (Peek().IsSymbol("/")) {
      op = BinaryOp::kDiv;
    } else if (Peek().IsSymbol("%")) {
      op = BinaryOp::kMod;
    } else {
      return left;
    }
    Advance();
    XQ_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchSymbol("-")) {
    XQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return MakeUnary(UnaryOp::kNeg, std::move(operand));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kInteger: {
      Advance();
      return MakeLiteral(rel::Value::Int(tok.int_value));
    }
    case TokenType::kNumber: {
      Advance();
      return MakeLiteral(rel::Value::Double(tok.double_value));
    }
    case TokenType::kString: {
      std::string text = tok.text;
      Advance();
      return MakeLiteral(rel::Value::Text(std::move(text)));
    }
    case TokenType::kKeyword: {
      if (tok.text == "NULL") {
        Advance();
        return MakeLiteral(rel::Value::Null());
      }
      if (tok.text == "TRUE") {
        Advance();
        return MakeLiteral(rel::Value::Int(1));
      }
      if (tok.text == "FALSE") {
        Advance();
        return MakeLiteral(rel::Value::Int(0));
      }
      // Aggregates.
      static constexpr std::pair<std::string_view, AggFunc> kAggs[] = {
          {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
          {"MIN", AggFunc::kMin},     {"MAX", AggFunc::kMax},
          {"AVG", AggFunc::kAvg},
      };
      for (const auto& [name, agg] : kAggs) {
        if (tok.text == name) {
          Advance();
          XQ_RETURN_IF_ERROR(ExpectSymbol("("));
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kAggregate;
          e->agg = agg;
          if (Peek().IsSymbol("*")) {
            Advance();
          } else {
            XQ_ASSIGN_OR_RETURN(e->left, ParseExpr());
          }
          XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
          return ExprPtr(std::move(e));
        }
      }
      // Scalar functions.
      static constexpr std::pair<std::string_view, ScalarFunc> kFuncs[] = {
          {"LOWER", ScalarFunc::kLower},
          {"UPPER", ScalarFunc::kUpper},
          {"LENGTH", ScalarFunc::kLength},
      };
      for (const auto& [name, func] : kFuncs) {
        if (tok.text == name) {
          Advance();
          XQ_RETURN_IF_ERROR(ExpectSymbol("("));
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kFunc;
          e->func = func;
          XQ_ASSIGN_OR_RETURN(e->left, ParseExpr());
          XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
          return ExprPtr(std::move(e));
        }
      }
      if (tok.text == "CONTAINS") {
        Advance();
        XQ_RETURN_IF_ERROR(ExpectSymbol("("));
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kContains;
        XQ_ASSIGN_OR_RETURN(e->left, ParseExpr());
        XQ_RETURN_IF_ERROR(ExpectSymbol(","));
        XQ_ASSIGN_OR_RETURN(e->right, ParseExpr());
        XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
        return ExprPtr(std::move(e));
      }
      return Status::ParseError("unexpected keyword '" + tok.text +
                                "' in expression");
    }
    case TokenType::kIdentifier: {
      std::string name = Advance().text;
      while (Peek().IsSymbol(".")) {
        Advance();
        XQ_ASSIGN_OR_RETURN(std::string part, ExpectIdentifier());
        name += ".";
        name += part;
      }
      return MakeColumnRef(std::move(name));
    }
    case TokenType::kSymbol: {
      if (tok.IsSymbol("(")) {
        Advance();
        XQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
        return inner;
      }
      break;
    }
    case TokenType::kEof:
      break;
  }
  return Status::ParseError("unexpected token '" + tok.text +
                            "' in expression at offset " +
                            std::to_string(tok.offset));
}

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  XQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  XQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseExprPublic();
}

}  // namespace xomatiq::sql
