#include "sql/rewriter.h"

#include "sql/expr_eval.h"

namespace xomatiq::sql {

using rel::Schema;
using rel::Value;
using rel::ValueType;

void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->bin_op == BinaryOp::kAnd) {
    SplitConjuncts(std::move(expr->left), out);
    SplitConjuncts(std::move(expr->right), out);
    return;
  }
  out->push_back(std::move(expr));
}

namespace {

void CollectColumnRefs(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    out->push_back(&e);
    return;
  }
  if (e.left) CollectColumnRefs(*e.left, out);
  if (e.right) CollectColumnRefs(*e.right, out);
  if (e.extra) CollectColumnRefs(*e.extra, out);
  for (const ExprPtr& item : e.list) CollectColumnRefs(*item, out);
}

}  // namespace

bool BindableAgainst(const Expr& e, const Schema& schema) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  for (const Expr* ref : refs) {
    if (!schema.FindColumn(ref->column_name).has_value()) return false;
  }
  return true;
}

std::string BareName(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

ExprPtr AndAll(std::vector<ExprPtr> conjuncts) {
  ExprPtr acc;
  for (ExprPtr& c : conjuncts) {
    acc = acc == nullptr
              ? std::move(c)
              : MakeBinary(BinaryOp::kAnd, std::move(acc), std::move(c));
  }
  return acc;
}

namespace {

bool IsLiteral(const ExprPtr& e) {
  return e != nullptr && e->kind == ExprKind::kLiteral;
}

}  // namespace

ExprPtr FoldConstants(ExprPtr e) {
  if (e == nullptr) return e;
  if (e->left) e->left = FoldConstants(std::move(e->left));
  if (e->right) e->right = FoldConstants(std::move(e->right));
  if (e->extra) e->extra = FoldConstants(std::move(e->extra));
  for (ExprPtr& item : e->list) item = FoldConstants(std::move(item));

  bool foldable = false;
  switch (e->kind) {
    case ExprKind::kBinary:
      // AND/OR stay intact so conjunct splitting sees the original shape.
      foldable = e->bin_op != BinaryOp::kAnd && e->bin_op != BinaryOp::kOr &&
                 IsLiteral(e->left) && IsLiteral(e->right);
      break;
    case ExprKind::kUnary:
      foldable = IsLiteral(e->left);
      break;
    case ExprKind::kFunc:
      foldable = IsLiteral(e->left);
      break;
    default:
      break;
  }
  if (!foldable) return e;
  auto v = Eval(*e, {});
  if (!v.ok()) return e;  // fold errors surface at execution time instead
  return MakeLiteral(std::move(*v));
}

void ClassifyPredicate(const Expr& e, size_t conjunct_index,
                       std::vector<EqPred>* eqs,
                       std::vector<RangePred>* ranges,
                       std::vector<ContainsPred>* contains) {
  if (e.kind == ExprKind::kContains &&
      e.left->kind == ExprKind::kColumnRef &&
      e.right->kind == ExprKind::kLiteral &&
      e.right->value.type() == ValueType::kText) {
    contains->push_back({BareName(e.left->column_name),
                         e.right->value.AsText(), conjunct_index});
    return;
  }
  if (e.kind == ExprKind::kBetween && !e.negated &&
      e.left->kind == ExprKind::kColumnRef &&
      e.right->kind == ExprKind::kLiteral &&
      e.extra->kind == ExprKind::kLiteral) {
    RangePred r;
    r.bare_column = BareName(e.left->column_name);
    r.lo = e.right->value;
    r.hi = e.extra->value;
    r.conjunct_index = conjunct_index;
    ranges->push_back(std::move(r));
    return;
  }
  // LIKE with a literal prefix scans the btree range [prefix, prefix+1)
  // and keeps the LIKE as a residual filter.
  if (e.kind == ExprKind::kLike && !e.negated &&
      e.left->kind == ExprKind::kColumnRef &&
      e.right->kind == ExprKind::kLiteral &&
      e.right->value.type() == ValueType::kText) {
    const std::string& pattern = e.right->value.AsText();
    size_t wildcard = pattern.find_first_of("%_");
    if (wildcard != std::string::npos && wildcard > 0) {
      std::string prefix = pattern.substr(0, wildcard);
      if (static_cast<unsigned char>(prefix.back()) < 0xFF) {
        std::string upper = prefix;
        upper.back() = static_cast<char>(upper.back() + 1);
        RangePred r;
        r.bare_column = BareName(e.left->column_name);
        r.lo = Value::Text(prefix);
        r.hi = Value::Text(upper);
        r.hi_inclusive = false;
        r.conjunct_index = conjunct_index;
        r.keep_conjunct = true;
        ranges->push_back(std::move(r));
      }
    }
    return;
  }
  if (e.kind != ExprKind::kBinary) return;
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (e.left->kind == ExprKind::kColumnRef &&
      e.right->kind == ExprKind::kLiteral) {
    col = e.left.get();
    lit = e.right.get();
  } else if (e.right->kind == ExprKind::kColumnRef &&
             e.left->kind == ExprKind::kLiteral) {
    col = e.right.get();
    lit = e.left.get();
    flipped = true;
  } else {
    return;
  }
  if (lit->value.is_null()) return;
  BinaryOp op = e.bin_op;
  if (flipped) {
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLe: op = BinaryOp::kGe; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGe: op = BinaryOp::kLe; break;
      default: break;
    }
  }
  std::string bare = BareName(col->column_name);
  switch (op) {
    case BinaryOp::kEq:
      eqs->push_back({bare, lit->value, conjunct_index});
      break;
    case BinaryOp::kLt:
    case BinaryOp::kLe: {
      RangePred r;
      r.bare_column = bare;
      r.hi = lit->value;
      r.hi_inclusive = op == BinaryOp::kLe;
      r.conjunct_index = conjunct_index;
      ranges->push_back(std::move(r));
      break;
    }
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      RangePred r;
      r.bare_column = bare;
      r.lo = lit->value;
      r.lo_inclusive = op == BinaryOp::kGe;
      r.conjunct_index = conjunct_index;
      ranges->push_back(std::move(r));
      break;
    }
    default:
      break;
  }
}

}  // namespace xomatiq::sql
