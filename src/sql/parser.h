#ifndef XOMATIQ_SQL_PARSER_H_
#define XOMATIQ_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace xomatiq::sql {

// Parses one SQL statement (trailing ';' optional).
common::Result<Statement> ParseStatement(std::string_view sql);

// Parses a standalone scalar/boolean expression (used by tests and by the
// XQ2SQL translator when stitching predicates).
common::Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_PARSER_H_
