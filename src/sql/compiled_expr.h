#ifndef XOMATIQ_SQL_COMPILED_EXPR_H_
#define XOMATIQ_SQL_COMPILED_EXPR_H_

#include <vector>

#include "common/result.h"
#include "relational/row_batch.h"
#include "relational/schema.h"
#include "sql/ast.h"

namespace xomatiq::sql {

// One step of a compiled expression program. Programs are the expression
// tree flattened to postfix over an explicit value stack, with jump
// targets preserving AND/OR short-circuit (and its three-valued logic)
// exactly as the tree walker evaluates it.
struct ExprOp {
  enum class Code {
    kPushConst,   // push `constant`
    kPushSlot,    // push tuple[slot]
    kBinary,      // pop r, l; push l <bin_op> r (comparison/arith/concat)
    kAndProbe,    // if TOS is definitely false: TOS = 0, jump to `jump`
    kOrProbe,     // if TOS is definitely true: TOS = 1, jump to `jump`
    kAndCombine,  // pop r, l; push three-valued l AND r
    kOrCombine,   // pop r, l; push three-valued l OR r
    kNot,         // pop v; push three-valued NOT v
    kNeg,         // pop v; push -v
    kIsNull,      // pop v; push (v IS [NOT] NULL)
    kLike,        // pop pattern, text; push match (negatable)
    kContains,    // pop keywords, text; push match
    kBetween,     // pop hi, lo, v; push containment (negatable)
    kInList,      // pop `arity` items then the needle; push membership
    kFunc,        // pop v; push func(v)
  };

  Code code = Code::kPushConst;
  BinaryOp bin_op = BinaryOp::kEq;
  ScalarFunc func = ScalarFunc::kLower;
  bool negated = false;
  int slot = -1;           // kPushSlot ordinal into the input tuple
  rel::Value constant;     // kPushConst
  size_t jump = 0;         // kAndProbe/kOrProbe short-circuit target
  size_t arity = 0;        // kInList item count
};

// Reusable per-evaluator scratch space. Not shared across threads. The
// value stack holds borrowed pointers (into the input tuple, the
// program's constants, or `owned` temporaries), so slot and constant
// pushes copy nothing — the win over re-walking the AST, which returns a
// fresh Value per node.
struct EvalScratch {
  std::vector<const rel::Value*> stack;
  std::vector<rel::Value> owned;
};

// A slot-bound expression program: built once at plan time, evaluated per
// batch without re-walking the AST. Column references must already be
// Bind()-resolved to ordinal slots of the operator's input schema.
class CompiledExpr {
 public:
  // Flattens `e` into a program. Fails on unbound column refs and on
  // aggregate/star nodes (the planner rewrites those away first).
  static common::Result<CompiledExpr> Compile(const Expr& e);

  // Evaluates the program against one row.
  common::Result<rel::Value> EvalRow(const rel::Tuple& row,
                                     EvalScratch* scratch) const;

  // Zero-copy variant: the returned pointer aims into `row`, the program's
  // constants, or `scratch->owned`; it is valid until the next evaluation
  // through `scratch`.
  common::Result<const rel::Value*> EvalRowRef(const rel::Tuple& row,
                                               EvalScratch* scratch) const;

  // Evaluates against the virtual concatenation left ++ right without
  // materializing it; joins use this for pair predicates. Same pointer
  // lifetime rules as EvalRowRef.
  common::Result<const rel::Value*> EvalPairRef(const rel::Tuple& left,
                                                const rel::Tuple& right,
                                                EvalScratch* scratch) const;

  // Narrows `batch`'s selection to the rows where the program is true
  // (SQL three-valued logic: NULL rows are filtered out).
  common::Status FilterBatch(rel::RowBatch* batch, EvalScratch* scratch) const;

  size_t num_ops() const { return ops_.size(); }

  // Ordinal of the input slot when the program is a bare column reference
  // (the common shape for join keys and SELECT lists); -1 otherwise.
  // Operators use this to read the slot directly, skipping the
  // interpreter's per-row setup.
  int single_slot() const {
    return ops_.size() == 1 && ops_[0].code == ExprOp::Code::kPushSlot
               ? ops_[0].slot
               : -1;
  }

 private:
  common::Status Emit(const Expr& e);
  common::Result<const rel::Value*> EvalRef(const rel::Tuple& left,
                                            const rel::Tuple* right,
                                            EvalScratch* scratch) const;

  std::vector<ExprOp> ops_;
};

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_COMPILED_EXPR_H_
