#ifndef XOMATIQ_SQL_TOKEN_H_
#define XOMATIQ_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace xomatiq::sql {

enum class TokenType {
  kEof,
  kIdentifier,  // table / column names (possibly "quoted")
  kKeyword,     // normalized to upper case in `text`
  kString,      // '...' literal, unescaped in `text`
  kInteger,
  kNumber,      // real literal
  kSymbol,      // punctuation / operator, verbatim in `text`
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;      // normalized payload (keywords uppercased)
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;     // byte offset in the source, for error messages

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_TOKEN_H_
