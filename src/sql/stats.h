#ifndef XOMATIQ_SQL_STATS_H_
#define XOMATIQ_SQL_STATS_H_

#include <cstddef>
#include <cstdint>

#include "relational/schema.h"
#include "relational/stats.h"
#include "sql/ast.h"

namespace xomatiq::sql {

// Per-operation unit costs for the cost-based planner. Units are abstract
// "row touches": a sequential scan of N rows costs N * seq_row. Absolute
// values are meaningless; only the ratios steer plan choice, and they are
// tuned to the batched executor (hash probes cheaper than index probes,
// index probes far cheaper than rescans, parallel scans amortizing a fixed
// worker-startup fee).
struct CostModel {
  double seq_row = 1.0;          // read one row from a sequential scan
  double pred_eval = 0.2;        // evaluate one residual predicate on a row
  double hash_build = 1.5;       // insert one row into a join hash table
  double hash_probe = 1.2;       // probe the hash table with one row
  double index_probe = 4.0;      // one hash-index point lookup
  double btree_descend = 8.0;    // one btree root-to-leaf descent
  double index_row = 1.5;        // fetch one matching row via an index
  double keyword_row = 1.5;      // fetch one posting from the inverted index
  double nl_pair = 0.4;          // evaluate one (outer, inner) pair in NL join
  double out_row = 0.1;          // emit one row downstream
  double sort_row_log = 0.3;     // per-row-per-log2(N) sorting cost
  double parallel_startup = 8000.0;  // fixed fee to fan out scan workers
};

// Selectivity and row-count estimation from rel::TableStats sketches.
// Every method degrades gracefully: when the needed column statistic is
// missing (NULL-only column, non-numeric range, unknown shape), a fixed
// default selectivity from the estimator constants applies.
class CardinalityEstimator {
 public:
  // Magic selectivities, used when statistics cannot answer precisely.
  static constexpr double kMinSel = 1e-6;
  static constexpr double kDefaultEq = 0.05;
  static constexpr double kDefaultRange = 0.33;
  static constexpr double kDefaultSel = 0.25;
  static constexpr double kContainsSel = 0.05;
  static constexpr double kLikeSel = 0.1;

  // Fraction of `stats` rows satisfying predicate `e`, whose column refs
  // bind against `schema` (the Get's alias-qualified schema; positions
  // line up with stats.columns). Clamped to [kMinSel, 1].
  static double Selectivity(const Expr& e, const rel::Schema& schema,
                            const rel::TableStats& stats);

  // Selectivity of an equi-join between two columns: 1 / max(ndv_l, ndv_r),
  // the classic containment assumption. Indices may be SIZE_MAX when a side
  // failed to resolve (falls back to the larger known NDV or kDefaultEq).
  static double EquiJoinSelectivity(const rel::TableStats& left,
                                    size_t left_col,
                                    const rel::TableStats& right,
                                    size_t right_col);
};

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_STATS_H_
