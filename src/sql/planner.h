#ifndef XOMATIQ_SQL_PLANNER_H_
#define XOMATIQ_SQL_PLANNER_H_

#include "common/result.h"
#include "relational/database.h"
#include "sql/plan.h"

namespace xomatiq::sql {

// Rule-based planner. Produces a left-deep physical plan in FROM order:
//   - single-table predicates choose hash/btree/inverted index access
//     paths when a matching index exists (equality, single-column range,
//     CONTAINS keyword), else sequential scan plus filter;
//   - joins pick index-nested-loop when the inner join column is indexed,
//     hash join for other equi-joins, nested-loop otherwise;
//   - GROUP BY / aggregates, HAVING, DISTINCT, ORDER BY, LIMIT layered on
//     top in standard SQL evaluation order.
// This is the "meticulous analysis of query plans" surface from §3.2 of
// the paper: EXPLAIN prints the chosen plan and bench_index_ablation
// measures the impact of each index choice.
class Planner {
 public:
  explicit Planner(rel::Database* db) : db_(db) {}

  common::Result<PlanPtr> PlanSelect(const SelectStmt& stmt);

 private:
  rel::Database* db_;
};

// Splits a boolean expression into top-level AND conjuncts (consumes the
// expression tree).
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out);

// True when every column reference in `e` resolves in `schema`.
bool BindableAgainst(const Expr& e, const rel::Schema& schema);

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_PLANNER_H_
