#ifndef XOMATIQ_SQL_PLANNER_H_
#define XOMATIQ_SQL_PLANNER_H_

#include "common/result.h"
#include "relational/database.h"
#include "sql/plan.h"

namespace xomatiq::sql {

// Planner tuning knobs.
struct PlannerOptions {
  // A sequential scan over a table with at least this many slots becomes a
  // kParallelSeqScan. Defaults high enough that unit-test-sized tables
  // keep their (byte-identical) SeqScan plans.
  size_t parallel_scan_threshold = 1 << 16;
  // Worker count for parallel scans: 0 = hardware concurrency. Parallel
  // scans are only chosen when the effective degree is >= 2.
  int parallel_degree = 0;
};

// Rule-based planner. Produces a left-deep physical plan in FROM order:
//   - single-table predicates choose hash/btree/inverted index access
//     paths when a matching index exists (equality, single-column range,
//     CONTAINS keyword), else sequential scan plus filter;
//   - joins pick index-nested-loop when the inner join column is indexed,
//     hash join for other equi-joins, nested-loop otherwise;
//   - GROUP BY / aggregates, HAVING, DISTINCT, ORDER BY, LIMIT layered on
//     top in standard SQL evaluation order.
// This is the "meticulous analysis of query plans" surface from §3.2 of
// the paper: EXPLAIN prints the chosen plan and bench_index_ablation
// measures the impact of each index choice.
class Planner {
 public:
  explicit Planner(rel::Database* db, PlannerOptions options = {})
      : db_(db), options_(options) {}

  common::Result<PlanPtr> PlanSelect(const SelectStmt& stmt);

  PlannerOptions& options() { return options_; }

 private:
  rel::Database* db_;
  PlannerOptions options_;
};

// Compiles every bound expression of `plan` (and its children) into the
// slot-bound programs the batched executor evaluates (plan->*_progs).
// PlanSelect calls this on its result; exposed for hand-built plans.
common::Status CompilePlanPrograms(PlanNode* plan);

// Splits a boolean expression into top-level AND conjuncts (consumes the
// expression tree).
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out);

// True when every column reference in `e` resolves in `schema`.
bool BindableAgainst(const Expr& e, const rel::Schema& schema);

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_PLANNER_H_
