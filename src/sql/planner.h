#ifndef XOMATIQ_SQL_PLANNER_H_
#define XOMATIQ_SQL_PLANNER_H_

#include "common/result.h"
#include "relational/database.h"
#include "sql/plan.h"

namespace xomatiq::sql {

// Which planning pipeline PlanSelect uses.
enum class PlannerMode {
  // Cost-based when every referenced table has fresh statistics (see the
  // staleness knobs below), rule-based otherwise. Any cost-based planning
  // failure falls back to rule-based, so kAuto never changes which queries
  // succeed — only which physical plans they get.
  kAuto,
  // Always the rule-based FROM-order pipeline (pre-optimizer behavior).
  kRuleBased,
  // Always cost-based; planning fails when statistics are missing/stale.
  kCostBased,
  // Rule-based with greedy join reordering disabled: tables join in
  // literal FROM order. The differential tests and bench_optimizer use
  // this as the worst-case baseline the optimizer is measured against.
  kFromOrder,
};

// Planner tuning knobs.
struct PlannerOptions {
  // A sequential scan over a table with at least this many slots becomes a
  // kParallelSeqScan. Defaults high enough that unit-test-sized tables
  // keep their (byte-identical) SeqScan plans.
  size_t parallel_scan_threshold = 1 << 16;
  // Worker count for parallel scans: 0 = hardware concurrency. Parallel
  // scans are only chosen when the effective degree is >= 2.
  int parallel_degree = 0;

  PlannerMode mode = PlannerMode::kAuto;
  // Statistics are "fresh" while the table's mutations since its last
  // ANALYZE stay within max(stats_stale_min, stats_stale_fraction * rows).
  uint64_t stats_stale_min = 64;
  double stats_stale_fraction = 0.2;
  // Joins of up to this many relations get exact DP join-order search over
  // left-deep trees; larger joins switch to greedy cheapest-extension.
  size_t dp_join_limit = 10;
};

// Query planner. Two pipelines share the surrounding SELECT machinery
// (aggregation, HAVING, ORDER BY placement, DISTINCT, LIMIT):
//
//   - Rule-based (the original planner): left-deep plan built greedily
//     from FROM order; single-table predicates choose hash/btree/inverted
//     index access paths when a matching index exists, joins pick
//     index-nested-loop when the inner join column is indexed, hash join
//     for other equi-joins, nested-loop otherwise.
//   - Cost-based (logical_plan.h + stats.h + physical_planner.h): binds
//     the statement to a logical IR, rewrites it (constant folding,
//     predicate pushdown), then searches join orders and access paths
//     with a cardinality/cost model fed by ANALYZE statistics.
//
// This is the "meticulous analysis of query plans" surface from §3.2 of
// the paper: EXPLAIN prints the chosen plan (with estimates when costed)
// and bench_index_ablation / bench_optimizer measure the impact of index
// and join-order choices.
class Planner {
 public:
  explicit Planner(rel::Database* db, PlannerOptions options = {})
      : db_(db), options_(options) {}

  common::Result<PlanPtr> PlanSelect(const SelectStmt& stmt);

  PlannerOptions& options() { return options_; }

 private:
  // True when every table referenced by `stmt` has statistics within the
  // staleness bound (false, too, when a table doesn't exist — the
  // rule-based path then reports the usual error).
  bool AllTablesFresh(const SelectStmt& stmt) const;

  common::Result<PlanPtr> PlanSelectRuleBased(const SelectStmt& stmt);
  common::Result<PlanPtr> PlanSelectCostBased(const SelectStmt& stmt);

  rel::Database* db_;
  PlannerOptions options_;
};

// Compiles every bound expression of `plan` (and its children) into the
// slot-bound programs the batched executor evaluates (plan->*_progs).
// PlanSelect calls this on its result; exposed for hand-built plans.
common::Status CompilePlanPrograms(PlanNode* plan);

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_PLANNER_H_
