#include "sql/stats.h"

#include <algorithm>
#include <cmath>

#include "sql/rewriter.h"

namespace xomatiq::sql {

using rel::ColumnStats;
using rel::Schema;
using rel::TableStats;
using rel::Value;

namespace {

double Clamp(double s) {
  return std::min(1.0, std::max(CardinalityEstimator::kMinSel, s));
}

const ColumnStats* ColumnFor(const Expr& col_ref, const Schema& schema,
                             const TableStats& stats) {
  if (col_ref.kind != ExprKind::kColumnRef) return nullptr;
  std::optional<size_t> idx = schema.FindColumn(col_ref.column_name);
  if (!idx.has_value() || *idx >= stats.columns.size()) return nullptr;
  return &stats.columns[*idx];
}

// Fraction of [min, max] below `v` under linear interpolation; nullopt when
// any endpoint is non-numeric (TEXT ranges fall back to defaults).
std::optional<double> RangeFraction(const ColumnStats& cs, const Value& v) {
  auto lo = cs.min.ToNumeric();
  auto hi = cs.max.ToNumeric();
  auto x = v.ToNumeric();
  if (!lo.ok() || !hi.ok() || !x.ok()) return std::nullopt;
  if (*hi <= *lo) return *x >= *lo ? 1.0 : 0.0;
  return (*x - *lo) / (*hi - *lo);
}

double EqSelectivity(const ColumnStats* cs, uint64_t row_count) {
  if (cs == nullptr || cs->ndv == 0) return CardinalityEstimator::kDefaultEq;
  double non_null = 1.0;
  if (row_count > 0) {
    non_null = 1.0 - cs->null_fraction(row_count);
  }
  return non_null / static_cast<double>(cs->ndv);
}

// col <op> literal range selectivity via min/max interpolation.
double CmpSelectivity(const ColumnStats* cs, BinaryOp op, const Value& lit) {
  if (cs == nullptr) return CardinalityEstimator::kDefaultRange;
  auto frac = RangeFraction(*cs, lit);
  if (!frac.has_value()) return CardinalityEstimator::kDefaultRange;
  double below = std::min(1.0, std::max(0.0, *frac));
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      return below;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 1.0 - below;
    default:
      return CardinalityEstimator::kDefaultRange;
  }
}

}  // namespace

double CardinalityEstimator::Selectivity(const Expr& e, const Schema& schema,
                                         const TableStats& stats) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      // Folded-constant predicate: TRUE keeps everything, FALSE nothing.
      if (e.value.is_null()) return kMinSel;
      auto n = e.value.ToNumeric();
      if (n.ok()) return *n != 0.0 ? 1.0 : kMinSel;
      return kDefaultSel;
    }
    case ExprKind::kBinary: {
      if (e.bin_op == BinaryOp::kAnd) {
        return Clamp(Selectivity(*e.left, schema, stats) *
                     Selectivity(*e.right, schema, stats));
      }
      if (e.bin_op == BinaryOp::kOr) {
        double s1 = Selectivity(*e.left, schema, stats);
        double s2 = Selectivity(*e.right, schema, stats);
        return Clamp(s1 + s2 - s1 * s2);
      }
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      bool flipped = false;
      if (e.left->kind == ExprKind::kColumnRef &&
          e.right->kind == ExprKind::kLiteral) {
        col = e.left.get();
        lit = e.right.get();
      } else if (e.right->kind == ExprKind::kColumnRef &&
                 e.left->kind == ExprKind::kLiteral) {
        col = e.right.get();
        lit = e.left.get();
        flipped = true;
      } else {
        return kDefaultSel;
      }
      BinaryOp op = e.bin_op;
      if (flipped) {
        switch (op) {
          case BinaryOp::kLt: op = BinaryOp::kGt; break;
          case BinaryOp::kLe: op = BinaryOp::kGe; break;
          case BinaryOp::kGt: op = BinaryOp::kLt; break;
          case BinaryOp::kGe: op = BinaryOp::kLe; break;
          default: break;
        }
      }
      const ColumnStats* cs = ColumnFor(*col, schema, stats);
      switch (op) {
        case BinaryOp::kEq:
          return Clamp(EqSelectivity(cs, stats.row_count));
        case BinaryOp::kNe:
          return Clamp(1.0 - EqSelectivity(cs, stats.row_count));
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return Clamp(CmpSelectivity(cs, op, lit->value));
        default:
          return kDefaultSel;
      }
    }
    case ExprKind::kUnary: {
      if (e.un_op == UnaryOp::kNot) {
        return Clamp(1.0 - Selectivity(*e.left, schema, stats));
      }
      return kDefaultSel;
    }
    case ExprKind::kIsNull: {
      const ColumnStats* cs =
          e.left ? ColumnFor(*e.left, schema, stats) : nullptr;
      double null_frac = cs != nullptr && stats.row_count > 0
                             ? cs->null_fraction(stats.row_count)
                             : kDefaultEq;
      return Clamp(e.negated ? 1.0 - null_frac : null_frac);
    }
    case ExprKind::kBetween: {
      const ColumnStats* cs = ColumnFor(*e.left, schema, stats);
      if (cs != nullptr && e.right->kind == ExprKind::kLiteral &&
          e.extra->kind == ExprKind::kLiteral) {
        auto lo = RangeFraction(*cs, e.right->value);
        auto hi = RangeFraction(*cs, e.extra->value);
        if (lo.has_value() && hi.has_value()) {
          double s = std::min(1.0, std::max(0.0, *hi)) -
                     std::min(1.0, std::max(0.0, *lo));
          s = std::max(0.0, s);
          return Clamp(e.negated ? 1.0 - s : s);
        }
      }
      return Clamp(e.negated ? 1.0 - kDefaultRange : kDefaultRange);
    }
    case ExprKind::kInList: {
      const ColumnStats* cs = ColumnFor(*e.left, schema, stats);
      double per = EqSelectivity(cs, stats.row_count);
      double s = per * static_cast<double>(e.list.size());
      s = std::min(1.0, s);
      return Clamp(e.negated ? 1.0 - s : s);
    }
    case ExprKind::kLike:
      return Clamp(e.negated ? 1.0 - kLikeSel : kLikeSel);
    case ExprKind::kContains:
      return kContainsSel;
    default:
      return kDefaultSel;
  }
}

double CardinalityEstimator::EquiJoinSelectivity(const TableStats& left,
                                                 size_t left_col,
                                                 const TableStats& right,
                                                 size_t right_col) {
  uint64_t ndv_l =
      left_col < left.columns.size() ? left.columns[left_col].ndv : 0;
  uint64_t ndv_r =
      right_col < right.columns.size() ? right.columns[right_col].ndv : 0;
  uint64_t ndv = std::max(ndv_l, ndv_r);
  if (ndv == 0) return kDefaultEq;
  return Clamp(1.0 / static_cast<double>(ndv));
}

}  // namespace xomatiq::sql
