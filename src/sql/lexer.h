#ifndef XOMATIQ_SQL_LEXER_H_
#define XOMATIQ_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace xomatiq::sql {

// Tokenizes a SQL statement string. Keywords are case-insensitive and
// normalized to upper case; identifiers keep their case. String literals
// use single quotes with '' as the escape; identifiers may be "quoted".
// Comments: -- to end of line.
common::Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_LEXER_H_
