#include "sql/planner.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "common/metrics.h"
#include "common/trace.h"
#include "sql/expr_eval.h"
#include "sql/logical_plan.h"
#include "sql/physical_planner.h"
#include "sql/rewriter.h"

namespace xomatiq::sql {

using common::Result;
using common::Status;
using rel::IndexEntry;
using rel::IndexKind;
using rel::Schema;
using rel::Value;
using rel::ValueType;

Result<PlanPtr> Planner::PlanSelect(const SelectStmt& stmt) {
  if (options_.mode == PlannerMode::kAuto ||
      options_.mode == PlannerMode::kCostBased) {
    if (AllTablesFresh(stmt)) {
      auto plan = PlanSelectCostBased(stmt);
      if (plan.ok()) return plan;
      if (options_.mode == PlannerMode::kCostBased) return plan;
      common::MetricsRegistry::Global()
          .GetCounter("sql.opt.fallback")
          ->Inc();
    } else if (options_.mode == PlannerMode::kCostBased) {
      return Status::InvalidArgument(
          "cost-based planning requires fresh statistics; run ANALYZE");
    }
  }
  common::MetricsRegistry::Global()
      .GetCounter("sql.opt.rule_based_plans")
      ->Inc();
  return PlanSelectRuleBased(stmt);
}

bool Planner::AllTablesFresh(const SelectStmt& stmt) const {
  std::vector<const TableRef*> refs;
  for (const TableRef& t : stmt.from) refs.push_back(&t);
  for (const JoinClause& j : stmt.joins) refs.push_back(&j.table);
  if (refs.empty()) return false;
  for (const TableRef* ref : refs) {
    std::shared_ptr<const rel::TableStats> stats = db_->StatsFor(ref->table);
    if (stats == nullptr) return false;
    uint64_t budget = std::max(
        options_.stats_stale_min,
        static_cast<uint64_t>(options_.stats_stale_fraction *
                              static_cast<double>(stats->row_count)));
    if (db_->MutationsSinceAnalyze(ref->table) > budget) return false;
  }
  return true;
}

Result<PlanPtr> Planner::PlanSelectCostBased(const SelectStmt& stmt) {
  common::Histogram* opt_hist =
      common::MetricsRegistry::Global().GetHistogram("sql.stage.optimize");
  common::TraceSpan span("sql.optimize", opt_hist);
  Binder binder(db_);
  XQ_ASSIGN_OR_RETURN(LogicalPtr logical, binder.BindSelect(stmt));
  XQ_RETURN_IF_ERROR(RewriteLogicalPlan(logical.get()));
  CostBasedPlanner lowering(db_, options_);
  XQ_ASSIGN_OR_RETURN(PlanPtr plan, lowering.Lower(*logical));
  XQ_RETURN_IF_ERROR(CompilePlanPrograms(plan.get()));
  common::MetricsRegistry::Global()
      .GetCounter("sql.opt.cost_based_plans")
      ->Inc();
  if (lowering.reordered()) {
    common::MetricsRegistry::Global()
        .GetCounter("sql.opt.join_reorders")
        ->Inc();
  }
  return plan;
}

namespace {

// Largest base-table input (in heap slots) feeding `node`. Index accesses
// count as small: they are selective by construction, so an operator above
// them does not inherit "big input" from the table they probe.
uint64_t LargestBaseInput(const PlanNode& node, const rel::Database* db) {
  uint64_t best = 0;
  if (node.kind == PlanKind::kSeqScan ||
      node.kind == PlanKind::kParallelSeqScan) {
    auto table = db->GetTable(node.table);
    if (table.ok()) best = (*table)->num_slots();
  }
  for (const PlanPtr& child : node.children) {
    best = std::max(best, LargestBaseInput(*child, db));
  }
  return best;
}

// Rule-based per-operator DOP: pipeline breakers fed by a big base input
// get a parallel degree; small inputs stay serial. The annotation is
// permission, not obligation — the executor re-checks actual row counts
// and pool width at run time before fanning out.
void AnnotateParallelOps(PlanNode* node, const rel::Database* db,
                         const PlannerOptions& options) {
  for (const PlanPtr& child : node->children) {
    AnnotateParallelOps(child.get(), db, options);
  }
  switch (node->kind) {
    case PlanKind::kHashJoin:
    case PlanKind::kSort:
    case PlanKind::kAggregate:
    case PlanKind::kDistinct:
      break;
    default:
      return;
  }
  if (LargestBaseInput(*node, db) < options.parallel_scan_threshold) return;
  int degree = options.parallel_degree;
  if (degree <= 0) {
    degree = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (degree >= 2) node->parallel_degree = degree;
}

}  // namespace

Result<PlanPtr> Planner::PlanSelectRuleBased(const SelectStmt& stmt) {
  // 1. Table list in FROM order.
  std::vector<TableRef> tables = stmt.from;
  for (const JoinClause& j : stmt.joins) tables.push_back(j.table);
  if (tables.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  // Alias uniqueness.
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t j = i + 1; j < tables.size(); ++j) {
      if (tables[i].alias == tables[j].alias) {
        return Status::InvalidArgument("duplicate table alias: " +
                                       tables[i].alias);
      }
    }
  }

  // 2. Conjunct pool from WHERE and JOIN ... ON.
  std::vector<ExprPtr> conjuncts;
  if (stmt.where) SplitConjuncts(stmt.where->Clone(), &conjuncts);
  for (const JoinClause& j : stmt.joins) {
    if (j.on) SplitConjuncts(j.on->Clone(), &conjuncts);
  }

  // 3. Left-deep join tree with greedy join ordering: after seeding with
  // the first FROM table, always prefer a not-yet-placed table that has a
  // cross-table conjunct linking it to the accumulated plan (equi-join or
  // range filter); fall back to the FROM order (a true cross product)
  // only when no table connects. This keeps chained joins — like the
  // XQ2SQL containment chains — from degenerating into early cross
  // products.
  std::vector<bool> placed(tables.size(), false);
  std::vector<Schema> qualified_schemas;
  qualified_schemas.reserve(tables.size());
  for (const TableRef& ref : tables) {
    XQ_ASSIGN_OR_RETURN(const rel::Table* t, db_->GetTable(ref.table));
    qualified_schemas.push_back(t->schema().Qualified(ref.alias));
  }
  // True when conjunct `e` spans the current plan and candidate `i` (it
  // binds against their concatenation but against neither side alone).
  auto links_to_plan = [&](const Schema& plan_schema, size_t i) {
    Schema combined = Schema::Concat(plan_schema, qualified_schemas[i]);
    for (const ExprPtr& c : conjuncts) {
      if (c == nullptr) continue;
      if (!BindableAgainst(*c, combined)) continue;
      if (BindableAgainst(*c, plan_schema)) continue;
      if (BindableAgainst(*c, qualified_schemas[i])) continue;
      return true;
    }
    return false;
  };

  // Seed score: how selective an index-driven access path this table
  // would get from its single-table predicates. Keyword postings are the
  // sharpest filter, then point equality, then ranges. Each join
  // component starts from its best-scoring table so selective predicates
  // apply before fan-out (e.g. the inverted-index scan seeds the keyword
  // legs of the paper's Fig 8 instead of the document table).
  auto seed_score = [&](size_t i) {
    std::vector<EqPred> eqs;
    std::vector<RangePred> ranges;
    std::vector<ContainsPred> contains;
    for (const ExprPtr& c : conjuncts) {
      if (c == nullptr) continue;
      if (!BindableAgainst(*c, qualified_schemas[i])) continue;
      ClassifyPredicate(*c, 0, &eqs, &ranges, &contains);
    }
    const auto* indexes = db_->IndexesOn(tables[i].table);
    if (indexes == nullptr) return 0;
    int score = 0;
    for (const auto& entry : *indexes) {
      if (entry->def.kind == IndexKind::kInverted) {
        for (const ContainsPred& cp : contains) {
          if (cp.bare_column == entry->def.columns[0]) score = std::max(score, 3);
        }
        continue;
      }
      for (const EqPred& ep : eqs) {
        if (ep.bare_column == entry->def.columns[0]) score = std::max(score, 2);
      }
      if (entry->def.kind == IndexKind::kBTree &&
          entry->def.columns.size() == 1) {
        for (const RangePred& rp : ranges) {
          if (rp.bare_column == entry->def.columns[0]) {
            score = std::max(score, 1);
          }
        }
      }
    }
    return score;
  };

  // Plans of finished join components; a cross product between components
  // happens only after each side is fully filtered, so disconnected query
  // parts never multiply unfiltered cardinalities.
  std::vector<PlanPtr> components;
  PlanPtr plan;
  for (size_t added = 0; added < tables.size(); ++added) {
    size_t next = tables.size();
    if (options_.mode == PlannerMode::kFromOrder) {
      // Reordering disabled: take tables in literal FROM order (the
      // worst-case baseline the optimizer benches measure against).
      for (size_t i = 0; i < tables.size(); ++i) {
        if (!placed[i]) {
          next = i;
          break;
        }
      }
    } else {
      if (plan != nullptr) {
        for (size_t i = 0; i < tables.size(); ++i) {
          if (!placed[i] && links_to_plan(plan->schema, i)) {
            next = i;
            break;
          }
        }
        if (next == tables.size()) {
          // No table connects: the current component is complete.
          components.push_back(std::move(plan));
          plan = nullptr;
        }
      }
      if (plan == nullptr) {
        int best = -1;
        for (size_t i = 0; i < tables.size(); ++i) {
          if (!placed[i]) {
            int score = seed_score(i);
            if (score > best) {
              best = score;
              next = i;
            }
          }
        }
      }
    }
    placed[next] = true;
    const TableRef& ref = tables[next];
    XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(ref.table));
    Schema qualified = table->schema().Qualified(ref.alias);

    // Classify single-table conjuncts for this table.
    std::vector<EqPred> eqs;
    std::vector<RangePred> ranges;
    std::vector<ContainsPred> contains;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (conjuncts[i] == nullptr) continue;
      if (!BindableAgainst(*conjuncts[i], qualified)) continue;
      ClassifyPredicate(*conjuncts[i], i, &eqs, &ranges, &contains);
    }

    // Choose access path: longest equality prefix over any index wins;
    // then single-column range on a btree; then CONTAINS via inverted
    // index; else sequential scan.
    PlanPtr access = std::make_unique<PlanNode>();
    access->table = ref.table;
    access->alias = ref.alias;
    access->schema = qualified;
    access->kind = PlanKind::kSeqScan;

    const auto* indexes = db_->IndexesOn(ref.table);
    size_t best_eq_len = 0;
    const IndexEntry* best_eq_index = nullptr;
    std::vector<Value> best_eq_key;
    std::vector<size_t> best_eq_conjuncts;
    const IndexEntry* range_index = nullptr;
    const RangePred* range_pred = nullptr;
    const IndexEntry* kw_index = nullptr;
    const ContainsPred* kw_pred = nullptr;
    if (indexes != nullptr) {
      for (const auto& entry : *indexes) {
        if (entry->def.kind == IndexKind::kInverted) {
          for (const ContainsPred& cp : contains) {
            if (cp.bare_column == entry->def.columns[0]) {
              kw_index = entry.get();
              kw_pred = &cp;
            }
          }
          continue;
        }
        // Equality prefix match.
        std::vector<Value> key;
        std::vector<size_t> used;
        for (const std::string& col : entry->def.columns) {
          const EqPred* found = nullptr;
          for (const EqPred& ep : eqs) {
            if (ep.bare_column == col) {
              found = &ep;
              break;
            }
          }
          if (found == nullptr) break;
          key.push_back(found->literal);
          used.push_back(found->conjunct_index);
        }
        bool usable = !key.empty() &&
                      (entry->def.kind == IndexKind::kBTree ||
                       key.size() == entry->def.columns.size());
        if (usable && key.size() > best_eq_len) {
          best_eq_len = key.size();
          best_eq_index = entry.get();
          best_eq_key = std::move(key);
          best_eq_conjuncts = std::move(used);
        }
        // Range on a single-column btree.
        if (entry->def.kind == IndexKind::kBTree &&
            entry->def.columns.size() == 1 && range_index == nullptr) {
          for (const RangePred& rp : ranges) {
            if (rp.bare_column == entry->def.columns[0]) {
              range_index = entry.get();
              range_pred = &rp;
              break;
            }
          }
        }
      }
    }

    if (best_eq_index != nullptr) {
      access->kind = PlanKind::kIndexScan;
      access->index = best_eq_index;
      access->eq_key = std::move(best_eq_key);
      for (size_t ci : best_eq_conjuncts) conjuncts[ci] = nullptr;
    } else if (range_index != nullptr) {
      access->kind = PlanKind::kIndexScan;
      access->index = range_index;
      access->lo = range_pred->lo;
      access->lo_inclusive = range_pred->lo_inclusive;
      access->hi = range_pred->hi;
      access->hi_inclusive = range_pred->hi_inclusive;
      if (!range_pred->keep_conjunct) {
        conjuncts[range_pred->conjunct_index] = nullptr;
      }
    } else if (kw_index != nullptr) {
      access->kind = PlanKind::kKeywordScan;
      access->index = kw_index;
      access->keyword = kw_pred->keyword;
      conjuncts[kw_pred->conjunct_index] = nullptr;
    } else if (table->num_slots() >= options_.parallel_scan_threshold) {
      int degree = options_.parallel_degree;
      if (degree <= 0) {
        degree = static_cast<int>(std::thread::hardware_concurrency());
      }
      if (degree >= 2) {
        access->kind = PlanKind::kParallelSeqScan;
        access->parallel_degree = degree;
      }
    }

    if (plan == nullptr) {
      plan = std::move(access);
    } else {
      // Join `access` to the accumulated plan. Find equi-join conjuncts
      // linking the two sides.
      struct EquiJoin {
        ExprPtr left_key;   // binds against plan->schema
        ExprPtr right_key;  // binds against qualified
        size_t conjunct_index;
        std::string right_bare;
      };
      std::vector<EquiJoin> equis;
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (conjuncts[i] == nullptr) continue;
        const Expr& e = *conjuncts[i];
        if (e.kind != ExprKind::kBinary || e.bin_op != BinaryOp::kEq) {
          continue;
        }
        bool l_on_left = BindableAgainst(*e.left, plan->schema);
        bool l_on_right = BindableAgainst(*e.left, qualified);
        bool r_on_left = BindableAgainst(*e.right, plan->schema);
        bool r_on_right = BindableAgainst(*e.right, qualified);
        EquiJoin ej;
        if (l_on_left && !l_on_right && r_on_right && !r_on_left) {
          ej.left_key = e.left->Clone();
          ej.right_key = e.right->Clone();
        } else if (r_on_left && !r_on_right && l_on_right && !l_on_left) {
          ej.left_key = e.right->Clone();
          ej.right_key = e.left->Clone();
        } else {
          continue;
        }
        ej.conjunct_index = i;
        if (ej.right_key->kind == ExprKind::kColumnRef) {
          ej.right_bare = BareName(ej.right_key->column_name);
        }
        equis.push_back(std::move(ej));
      }

      auto join = std::make_unique<PlanNode>();
      join->schema = Schema::Concat(plan->schema, qualified);
      // Prefer index-nested-loop when the inner side is a plain scan (no
      // consumed predicate) and an index exists on a join column.
      const IndexEntry* inl_index = nullptr;
      const EquiJoin* inl_equi = nullptr;
      if (access->kind == PlanKind::kSeqScan ||
          access->kind == PlanKind::kParallelSeqScan) {
        for (const EquiJoin& ej : equis) {
          if (ej.right_bare.empty()) continue;
          const IndexEntry* idx =
              db_->FindIndex(ref.table, {ej.right_bare}, IndexKind::kHash);
          if (idx == nullptr) {
            idx =
                db_->FindIndex(ref.table, {ej.right_bare}, IndexKind::kBTree);
          }
          if (idx != nullptr) {
            inl_index = idx;
            inl_equi = &ej;
            break;
          }
        }
      }
      if (inl_index != nullptr) {
        join->kind = PlanKind::kIndexNLJoin;
        join->table = ref.table;
        join->alias = ref.alias;
        join->index = inl_index;
        ExprPtr outer_key = inl_equi->left_key->Clone();
        XQ_RETURN_IF_ERROR(Bind(outer_key.get(), plan->schema));
        join->outer_key_exprs.push_back(std::move(outer_key));
        conjuncts[inl_equi->conjunct_index] = nullptr;
        join->children.push_back(std::move(plan));
      } else if (!equis.empty()) {
        join->kind = PlanKind::kHashJoin;
        for (EquiJoin& ej : equis) {
          XQ_RETURN_IF_ERROR(Bind(ej.left_key.get(), plan->schema));
          XQ_RETURN_IF_ERROR(Bind(ej.right_key.get(), qualified));
          join->left_keys.push_back(std::move(ej.left_key));
          join->right_keys.push_back(std::move(ej.right_key));
          conjuncts[ej.conjunct_index] = nullptr;
        }
        join->children.push_back(std::move(plan));
        join->children.push_back(std::move(access));
      } else {
        join->kind = PlanKind::kNestedLoopJoin;
        join->children.push_back(std::move(plan));
        join->children.push_back(std::move(access));
      }
      if (join->kind == PlanKind::kIndexNLJoin) {
        // Inner side is accessed via the index; the access node is unused
        // (its schema was already folded into the join schema).
      }
      plan = std::move(join);
    }

    // Apply every not-yet-consumed conjunct that now binds.
    std::vector<ExprPtr> applicable;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (conjuncts[i] == nullptr) continue;
      if (BindableAgainst(*conjuncts[i], plan->schema)) {
        applicable.push_back(std::move(conjuncts[i]));
        conjuncts[i] = nullptr;
      }
    }
    if (!applicable.empty()) {
      ExprPtr pred = AndAll(std::move(applicable));
      XQ_RETURN_IF_ERROR(Bind(pred.get(), plan->schema));
      auto filter = std::make_unique<PlanNode>();
      filter->kind = PlanKind::kFilter;
      filter->schema = plan->schema;
      filter->predicate = std::move(pred);
      filter->children.push_back(std::move(plan));
      plan = std::move(filter);
    }
  }
  components.push_back(std::move(plan));

  // Cross-join the filtered components (left-to-right), applying any
  // conjunct that becomes bindable on the combined schema.
  plan = std::move(components[0]);
  for (size_t c = 1; c < components.size(); ++c) {
    auto join = std::make_unique<PlanNode>();
    join->kind = PlanKind::kNestedLoopJoin;
    join->schema = Schema::Concat(plan->schema, components[c]->schema);
    join->children.push_back(std::move(plan));
    join->children.push_back(std::move(components[c]));
    plan = std::move(join);
    std::vector<ExprPtr> applicable;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (conjuncts[i] == nullptr) continue;
      if (BindableAgainst(*conjuncts[i], plan->schema)) {
        applicable.push_back(std::move(conjuncts[i]));
        conjuncts[i] = nullptr;
      }
    }
    if (!applicable.empty()) {
      ExprPtr pred = AndAll(std::move(applicable));
      XQ_RETURN_IF_ERROR(Bind(pred.get(), plan->schema));
      auto filter = std::make_unique<PlanNode>();
      filter->kind = PlanKind::kFilter;
      filter->schema = plan->schema;
      filter->predicate = std::move(pred);
      filter->children.push_back(std::move(plan));
      plan = std::move(filter);
    }
  }

  for (const ExprPtr& c : conjuncts) {
    if (c != nullptr) {
      return Status::InvalidArgument("predicate references unknown columns: " +
                                     c->ToString());
    }
  }

  // 4. Aggregation.
  bool has_agg = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (item.expr && ContainsAggregate(*item.expr)) has_agg = true;
  }
  if (stmt.having && ContainsAggregate(*stmt.having)) has_agg = true;

  // Working copies of the output expressions, rewritten when aggregating.
  std::vector<ExprPtr> out_exprs;
  std::vector<std::string> out_names;
  std::vector<ExprPtr> order_exprs;
  ExprPtr having;

  for (const SelectItem& item : stmt.items) {
    if (item.is_star) {
      if (has_agg) {
        return Status::InvalidArgument("SELECT * cannot mix with aggregates");
      }
      for (const rel::Column& col : plan->schema.columns()) {
        out_exprs.push_back(MakeColumnRef(col.name));
        out_names.push_back(BareName(col.name));
      }
      continue;
    }
    out_exprs.push_back(item.expr->Clone());
    if (!item.alias.empty()) {
      out_names.push_back(item.alias);
    } else if (item.expr->kind == ExprKind::kColumnRef) {
      out_names.push_back(BareName(item.expr->column_name));
    } else {
      out_names.push_back(item.expr->ToString());
    }
  }
  for (const OrderItem& o : stmt.order_by) {
    order_exprs.push_back(o.expr->Clone());
  }
  if (stmt.having) having = stmt.having->Clone();

  if (has_agg) {
    auto agg_node = std::make_unique<PlanNode>();
    agg_node->kind = PlanKind::kAggregate;
    Schema agg_schema;
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      ExprPtr g = stmt.group_by[i]->Clone();
      XQ_RETURN_IF_ERROR(Bind(g.get(), plan->schema));
      agg_schema.AddColumn({"_grp" + std::to_string(i),
                            InferType(*g, plan->schema), false});
      agg_node->group_exprs.push_back(std::move(g));
    }
    // Rewrite output/order/having expressions: group expressions become
    // _grpN refs, aggregate calls become _aggN refs (collected in order).
    std::vector<std::string> group_strings;
    for (const ExprPtr& g : stmt.group_by) {
      group_strings.push_back(g->ToString());
    }
    std::vector<AggSpec>* aggs = &agg_node->aggs;
    Schema* agg_schema_ptr = &agg_schema;
    const Schema& input_schema = plan->schema;
    // Recursive rewriter.
    std::function<Result<ExprPtr>(ExprPtr)> rewrite =
        [&](ExprPtr e) -> Result<ExprPtr> {
      std::string repr = e->ToString();
      for (size_t i = 0; i < group_strings.size(); ++i) {
        if (repr == group_strings[i]) {
          return MakeColumnRef("_grp" + std::to_string(i));
        }
      }
      if (e->kind == ExprKind::kAggregate) {
        AggSpec spec;
        spec.func = e->agg;
        if (e->left) {
          spec.arg = e->left->Clone();
          XQ_RETURN_IF_ERROR(Bind(spec.arg.get(), input_schema));
        }
        size_t idx = aggs->size();
        ValueType t = InferType(*e, input_schema);
        aggs->push_back(std::move(spec));
        agg_schema_ptr->AddColumn({"_agg" + std::to_string(idx), t, false});
        return MakeColumnRef("_agg" + std::to_string(idx));
      }
      if (e->kind == ExprKind::kColumnRef) {
        return Status::InvalidArgument(
            "column " + e->column_name +
            " must appear in GROUP BY or inside an aggregate");
      }
      if (e->left) {
        XQ_ASSIGN_OR_RETURN(e->left, rewrite(std::move(e->left)));
      }
      if (e->right) {
        XQ_ASSIGN_OR_RETURN(e->right, rewrite(std::move(e->right)));
      }
      if (e->extra) {
        XQ_ASSIGN_OR_RETURN(e->extra, rewrite(std::move(e->extra)));
      }
      for (ExprPtr& item : e->list) {
        XQ_ASSIGN_OR_RETURN(item, rewrite(std::move(item)));
      }
      return e;
    };
    for (ExprPtr& e : out_exprs) {
      XQ_ASSIGN_OR_RETURN(e, rewrite(std::move(e)));
    }
    for (ExprPtr& e : order_exprs) {
      XQ_ASSIGN_OR_RETURN(e, rewrite(std::move(e)));
    }
    if (having) {
      XQ_ASSIGN_OR_RETURN(having, rewrite(std::move(having)));
    }
    agg_node->schema = std::move(agg_schema);
    agg_node->children.push_back(std::move(plan));
    plan = std::move(agg_node);
    if (having) {
      XQ_RETURN_IF_ERROR(Bind(having.get(), plan->schema));
      auto filter = std::make_unique<PlanNode>();
      filter->kind = PlanKind::kFilter;
      filter->schema = plan->schema;
      filter->predicate = std::move(having);
      filter->children.push_back(std::move(plan));
      plan = std::move(filter);
    }
  } else if (stmt.having) {
    return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
  }

  // 5. ORDER BY: sort before projection when the keys bind against the
  // pre-projection schema, otherwise after (keys naming select aliases).
  bool sort_pre = !order_exprs.empty();
  for (const ExprPtr& e : order_exprs) {
    if (!BindableAgainst(*e, plan->schema)) sort_pre = false;
  }
  auto make_sort = [&](PlanPtr child,
                       std::vector<ExprPtr> keys) -> Result<PlanPtr> {
    auto sort = std::make_unique<PlanNode>();
    sort->kind = PlanKind::kSort;
    sort->schema = child->schema;
    for (size_t i = 0; i < keys.size(); ++i) {
      XQ_RETURN_IF_ERROR(Bind(keys[i].get(), child->schema));
      SortKey sk;
      sk.expr = std::move(keys[i]);
      sk.desc = stmt.order_by[i].desc;
      sort->sort_keys.push_back(std::move(sk));
    }
    sort->children.push_back(std::move(child));
    return PlanPtr(std::move(sort));
  };
  if (sort_pre) {
    XQ_ASSIGN_OR_RETURN(plan, make_sort(std::move(plan),
                                        std::move(order_exprs)));
    order_exprs.clear();
  }

  // 6. Projection.
  auto project = std::make_unique<PlanNode>();
  project->kind = PlanKind::kProject;
  Schema out_schema;
  for (size_t i = 0; i < out_exprs.size(); ++i) {
    XQ_RETURN_IF_ERROR(Bind(out_exprs[i].get(), plan->schema));
    out_schema.AddColumn(
        {out_names[i], InferType(*out_exprs[i], plan->schema), false});
    project->project_exprs.push_back(std::move(out_exprs[i]));
  }
  project->schema = std::move(out_schema);
  project->children.push_back(std::move(plan));
  plan = std::move(project);

  if (!order_exprs.empty()) {
    XQ_ASSIGN_OR_RETURN(
        plan, make_sort(std::move(plan), std::move(order_exprs)));
  }

  // 7. DISTINCT.
  if (stmt.distinct) {
    auto distinct = std::make_unique<PlanNode>();
    distinct->kind = PlanKind::kDistinct;
    distinct->schema = plan->schema;
    distinct->children.push_back(std::move(plan));
    plan = std::move(distinct);
  }

  // 8. LIMIT / OFFSET.
  if (stmt.limit.has_value() || stmt.offset.has_value()) {
    auto limit = std::make_unique<PlanNode>();
    limit->kind = PlanKind::kLimit;
    limit->schema = plan->schema;
    limit->limit = stmt.limit.value_or(-1);
    limit->offset = stmt.offset.value_or(0);
    limit->children.push_back(std::move(plan));
    plan = std::move(limit);
  }

  AnnotateParallelOps(plan.get(), db_, options_);
  XQ_RETURN_IF_ERROR(CompilePlanPrograms(plan.get()));
  return plan;
}

namespace {

Result<CompiledExpr> CompileOne(const ExprPtr& e) {
  return CompiledExpr::Compile(*e);
}

Status CompileList(const std::vector<ExprPtr>& exprs,
                   std::vector<CompiledExpr>* out) {
  out->clear();
  out->reserve(exprs.size());
  for (const ExprPtr& e : exprs) {
    XQ_ASSIGN_OR_RETURN(CompiledExpr prog, CompileOne(e));
    out->push_back(std::move(prog));
  }
  return Status::OK();
}

}  // namespace

Status CompilePlanPrograms(PlanNode* plan) {
  if (plan->predicate) {
    XQ_ASSIGN_OR_RETURN(CompiledExpr prog, CompileOne(plan->predicate));
    plan->predicate_prog = std::move(prog);
  }
  XQ_RETURN_IF_ERROR(CompileList(plan->project_exprs, &plan->project_progs));
  XQ_RETURN_IF_ERROR(CompileList(plan->left_keys, &plan->left_key_progs));
  XQ_RETURN_IF_ERROR(CompileList(plan->right_keys, &plan->right_key_progs));
  XQ_RETURN_IF_ERROR(
      CompileList(plan->outer_key_exprs, &plan->outer_key_progs));
  XQ_RETURN_IF_ERROR(CompileList(plan->group_exprs, &plan->group_progs));
  plan->sort_key_progs.clear();
  plan->sort_key_progs.reserve(plan->sort_keys.size());
  for (const SortKey& sk : plan->sort_keys) {
    XQ_ASSIGN_OR_RETURN(CompiledExpr prog, CompileOne(sk.expr));
    plan->sort_key_progs.push_back(std::move(prog));
  }
  plan->agg_arg_progs.clear();
  plan->agg_arg_progs.reserve(plan->aggs.size());
  for (const AggSpec& spec : plan->aggs) {
    if (spec.arg == nullptr) {
      plan->agg_arg_progs.emplace_back();
    } else {
      XQ_ASSIGN_OR_RETURN(CompiledExpr prog, CompileOne(spec.arg));
      plan->agg_arg_progs.emplace_back(std::move(prog));
    }
  }
  for (const PlanPtr& child : plan->children) {
    XQ_RETURN_IF_ERROR(CompilePlanPrograms(child.get()));
  }
  return Status::OK();
}

}  // namespace xomatiq::sql
