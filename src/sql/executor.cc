#include "sql/executor.h"

#include <algorithm>
#include <chrono>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "exec/worker_pool.h"
#include "sql/expr_eval.h"
#include "sql/planner.h"

namespace xomatiq::sql {

using common::Result;
using common::Status;
using rel::CompositeKey;
using rel::RowBatch;
using rel::RowId;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

// ---------------------------------------------------------------------
// Shared aggregate machinery (both paths).
// ---------------------------------------------------------------------

namespace {

struct AggState {
  int64_t count = 0;
  bool has = false;
  bool all_int = true;
  int64_t isum = 0;
  double dsum = 0;
  Value min;
  Value max;
};

// Folds one already-evaluated argument value into `state`. `v` is null
// for COUNT(*).
Status UpdateAggValue(AggFunc func, const Value* v, AggState* state) {
  if (v == nullptr) {  // COUNT(*)
    ++state->count;
    return Status::OK();
  }
  if (v->is_null()) return Status::OK();
  ++state->count;
  switch (func) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      XQ_ASSIGN_OR_RETURN(double d, v->ToNumeric());
      state->dsum += d;
      if (v->type() == ValueType::kInt) {
        state->isum += v->AsInt();
      } else {
        state->all_int = false;
      }
      state->has = true;
      break;
    }
    case AggFunc::kMin:
      if (!state->has || Value::Compare(*v, state->min) < 0) state->min = *v;
      state->has = true;
      break;
    case AggFunc::kMax:
      if (!state->has || Value::Compare(*v, state->max) > 0) state->max = *v;
      state->has = true;
      break;
  }
  return Status::OK();
}

Status UpdateAgg(const AggSpec& spec, const Tuple& tuple, AggState* state) {
  if (spec.arg == nullptr) return UpdateAggValue(spec.func, nullptr, state);
  XQ_ASSIGN_OR_RETURN(Value v, Eval(*spec.arg, tuple));
  return UpdateAggValue(spec.func, &v, state);
}

// Folds a thread-local partial into `dst` (parallel aggregation merge).
// Counts and sums add, min/max compare, and integer-ness survives only
// when both sides stayed integral.
void MergeAggState(AggFunc func, AggState* dst, const AggState& src) {
  dst->count += src.count;
  switch (func) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      dst->isum += src.isum;
      dst->dsum += src.dsum;
      dst->all_int = dst->all_int && src.all_int;
      dst->has = dst->has || src.has;
      break;
    case AggFunc::kMin:
      if (src.has && (!dst->has || Value::Compare(src.min, dst->min) < 0)) {
        dst->min = src.min;
      }
      dst->has = dst->has || src.has;
      break;
    case AggFunc::kMax:
      if (src.has && (!dst->has || Value::Compare(src.max, dst->max) > 0)) {
        dst->max = src.max;
      }
      dst->has = dst->has || src.has;
      break;
  }
}

Value FinalizeAgg(const AggSpec& spec, const AggState& state) {
  switch (spec.func) {
    case AggFunc::kCount:
      return Value::Int(state.count);
    case AggFunc::kSum:
      if (!state.has) return Value::Null();
      return state.all_int ? Value::Int(state.isum)
                           : Value::Double(state.dsum);
    case AggFunc::kAvg:
      if (!state.has) return Value::Null();
      return Value::Double(state.dsum / static_cast<double>(state.count));
    case AggFunc::kMin:
      return state.has ? state.min : Value::Null();
    case AggFunc::kMax:
      return state.has ? state.max : Value::Null();
  }
  return Value::Null();
}

// True when some node in `plan` has bound expressions without compiled
// programs (hand-built plans; planner output arrives pre-compiled).
bool NeedsCompile(const PlanNode& plan) {
  if (plan.predicate && !plan.predicate_prog.has_value()) return true;
  if (plan.project_progs.size() != plan.project_exprs.size()) return true;
  if (plan.left_key_progs.size() != plan.left_keys.size()) return true;
  if (plan.right_key_progs.size() != plan.right_keys.size()) return true;
  if (plan.outer_key_progs.size() != plan.outer_key_exprs.size()) return true;
  if (plan.sort_key_progs.size() != plan.sort_keys.size()) return true;
  if (plan.group_progs.size() != plan.group_exprs.size()) return true;
  if (plan.agg_arg_progs.size() != plan.aggs.size()) return true;
  for (const auto& child : plan.children) {
    if (NeedsCompile(*child)) return true;
  }
  return false;
}

// Accumulates rows into capacity-sized batches and forwards them to the
// sink, honoring a row budget (-1 = unlimited) and consumer stop.
class BatchEmitter {
 public:
  BatchEmitter(size_t capacity, const Executor::BatchSink& sink,
               int64_t budget)
      : batch_(capacity), sink_(sink), budget_(budget) {}

  // Appends a row that outlives the batch. Returns false to stop
  // producing (budget met or consumer done).
  bool PushRef(const Tuple* row, RowId id) {
    batch_.AppendRef(row, id);
    return MaybeFlush();
  }

  // Appends a synthesized row.
  bool PushOwned(Tuple row) {
    batch_.AppendOwned(std::move(row));
    return MaybeFlush();
  }

  // Flushes any buffered remainder. Returns false if stopped.
  bool Flush() {
    if (batch_.empty()) return !stopped_;
    emitted_ += static_cast<int64_t>(batch_.size());
    if (!sink_(batch_)) stopped_ = true;
    batch_.Clear();
    if (budget_ >= 0 && emitted_ >= budget_) stopped_ = true;
    return !stopped_;
  }

  bool stopped() const { return stopped_; }

 private:
  bool MaybeFlush() {
    if (batch_.full() ||
        (budget_ >= 0 &&
         emitted_ + static_cast<int64_t>(batch_.size()) >= budget_)) {
      return Flush();
    }
    return true;
  }

  RowBatch batch_;
  const Executor::BatchSink& sink_;
  int64_t budget_;
  int64_t emitted_ = 0;
  bool stopped_ = false;
};

// Per-program bare-column-ref slots (-1 where the interpreter is needed).
std::vector<int> SingleSlots(const std::vector<CompiledExpr>& progs) {
  std::vector<int> slots;
  slots.reserve(progs.size());
  for (const CompiledExpr& p : progs) slots.push_back(p.single_slot());
  return slots;
}

// Evaluates a key program, reading bare column refs directly.
inline Result<const Value*> EvalKey(const CompiledExpr& prog, int slot,
                                    const Tuple& row, EvalScratch* scratch) {
  if (slot >= 0 && static_cast<size_t>(slot) < row.size()) {
    return &row[static_cast<size_t>(slot)];
  }
  return prog.EvalRowRef(row, scratch);
}

// Evaluates a join-pair predicate without materializing the combined row.
Result<bool> PairPasses(const CompiledExpr& prog, const Tuple& left,
                        const Tuple& right, EvalScratch* scratch) {
  XQ_ASSIGN_OR_RETURN(const Value* v, prog.EvalPairRef(left, right, scratch));
  std::optional<bool> t = Truthiness(*v);
  return t.has_value() && *t;
}

// Joined row: left columns then right columns, built with one allocation.
Tuple Concat(const Tuple& left, const Tuple& right) {
  Tuple combined;
  combined.reserve(left.size() + right.size());
  combined.insert(combined.end(), left.begin(), left.end());
  combined.insert(combined.end(), right.begin(), right.end());
  return combined;
}

// Re-check callback for index-sourced rows. Indexes are single-version
// (latest keys only), so under a snapshot read a probe may return RowIds
// whose version visible at the epoch no longer satisfies the probed
// predicate — the row was updated after the snapshot. Null = no re-check
// (writer context, where index and heap mutate under one latch).
using RowVerify = std::function<bool(const Tuple&)>;

// Equality/prefix probe re-check: the visible tuple's indexed columns must
// still equal the probed key prefix.
RowVerify MakeEqVerify(const rel::IndexEntry& entry, const CompositeKey& key,
                       uint64_t epoch) {
  if (epoch == rel::kEpochMax) return nullptr;
  return [&entry, &key](const Tuple& tuple) {
    for (size_t k = 0; k < key.size(); ++k) {
      const Value& v = tuple[entry.column_indexes[k]];
      if (v.is_null() || Value::Compare(v, key[k]) != 0) return false;
    }
    return true;
  };
}

// Range probe re-check against the plan's lo/hi bounds.
RowVerify MakeRangeVerify(const rel::IndexEntry& entry, const PlanNode& plan,
                          uint64_t epoch) {
  if (epoch == rel::kEpochMax) return nullptr;
  return [&entry, &plan](const Tuple& tuple) {
    const Value& v = tuple[entry.column_indexes[0]];
    if (v.is_null()) return false;
    if (plan.lo.has_value()) {
      int c = Value::Compare(v, *plan.lo);
      if (c < 0 || (c == 0 && !plan.lo_inclusive)) return false;
    }
    if (plan.hi.has_value()) {
      int c = Value::Compare(v, *plan.hi);
      if (c > 0 || (c == 0 && !plan.hi_inclusive)) return false;
    }
    return true;
  };
}

// Keyword probe re-check: the visible text must still contain every token
// of the phrase (same AND-over-tokens semantics as InvertedIndex).
RowVerify MakeKeywordVerify(const rel::IndexEntry& entry,
                            const std::string& phrase, uint64_t epoch) {
  if (epoch == rel::kEpochMax) return nullptr;
  return [&entry, want = common::TokenizeKeywords(phrase)](
             const Tuple& tuple) {
    const Value& v = tuple[entry.column_indexes[0]];
    if (v.is_null()) return false;
    std::vector<std::string> have = common::TokenizeKeywords(v.AsText());
    for (const std::string& w : want) {
      if (std::find(have.begin(), have.end(), w) == have.end()) return false;
    }
    return true;
  };
}

// RowIds matched by `plan`'s index probe, collected under the entry's
// shared latch so concurrent maintenance cannot rebalance the structure
// mid-walk. Collected, not streamed: the latch is held for the index walk
// only, never across heap fetches or sink calls.
std::vector<RowId> CollectIndexMatches(const PlanNode& plan,
                                       const rel::IndexEntry& entry) {
  std::vector<RowId> matches;
  std::shared_lock<std::shared_mutex> lock(entry.latch);
  if (!plan.eq_key.empty()) {
    if (entry.def.kind == rel::IndexKind::kHash) {
      const std::vector<RowId>* rows = entry.hash->Lookup(plan.eq_key);
      if (rows != nullptr) matches = *rows;
    } else if (plan.eq_key.size() == entry.def.columns.size()) {
      matches = entry.btree->Lookup(plan.eq_key);
    } else {
      entry.btree->ScanPrefix(
          plan.eq_key,
          [&](const CompositeKey&, const std::vector<RowId>& rows) {
            matches.insert(matches.end(), rows.begin(), rows.end());
            return true;
          });
    }
    return matches;
  }
  std::optional<rel::BTreeIndex::Bound> lo, hi;
  if (plan.lo.has_value()) {
    lo = rel::BTreeIndex::Bound{{*plan.lo}, plan.lo_inclusive};
  }
  if (plan.hi.has_value()) {
    hi = rel::BTreeIndex::Bound{{*plan.hi}, plan.hi_inclusive};
  }
  entry.btree->Scan(lo, hi,
                    [&](const CompositeKey&, const std::vector<RowId>& rows) {
                      matches.insert(matches.end(), rows.begin(), rows.end());
                      return true;
                    });
  return matches;
}

// Streams the tuples visible at `epoch` behind `rows` into the emitter;
// false on stop. Rows with no visible version are skipped, not errors:
// the (single-version) index runs ahead of the snapshot.
Result<bool> EmitRowIds(const rel::Table& table, const std::vector<RowId>& rows,
                        uint64_t epoch, const RowVerify& verify,
                        const common::Deadline& deadline, BatchEmitter* em) {
  uint64_t probe = 0;
  for (RowId row : rows) {
    if (deadline.set() && (++probe & 1023) == 0 && deadline.expired()) {
      return Status::Timeout("query deadline exceeded");
    }
    auto tuple = table.Get(row, epoch);
    if (!tuple.ok()) {
      if (tuple.status().code() == common::StatusCode::kNotFound) continue;
      return tuple.status();
    }
    if (verify && !verify(**tuple)) continue;
    if (!em->PushRef(*tuple, row)) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------
// Batched pipeline.
// ---------------------------------------------------------------------

Status Executor::ExecuteBatched(const PlanNode& plan, const BatchSink& sink) {
  if (NeedsCompile(plan)) {
    // Compilation only fills the *_progs caches from already-bound
    // expressions; the plan is logically const.
    XQ_RETURN_IF_ERROR(CompilePlanPrograms(const_cast<PlanNode*>(&plan)));
  }
  return ExecB(plan, sink, /*budget=*/-1);
}

Result<std::vector<Tuple>> Executor::ExecuteToVector(const PlanNode& plan) {
  std::vector<Tuple> rows;
  XQ_RETURN_IF_ERROR(ExecuteBatched(plan, [&](RowBatch& batch) {
    for (size_t i = 0; i < batch.size(); ++i) {
      // The batch is dead after this call, so owned rows move out free.
      rows.push_back(batch.StealRow(i));
    }
    return true;
  }));
  return rows;
}

exec::WorkerPool* Executor::Pool() const {
  return options_.pool != nullptr ? options_.pool
                                  : exec::WorkerPool::Global();
}

size_t Executor::EffectiveDegree(const PlanNode& plan,
                                 size_t input_rows) const {
  if (plan.parallel_degree < 2) return 1;
  if (input_rows < options_.parallel_row_threshold) return 1;
  return Pool()->AdmitDegree(static_cast<size_t>(plan.parallel_degree));
}

bool Executor::DeadlineHit() {
  if (deadline_hit_) return true;
  if (!options_.deadline.set()) return false;
  if ((++deadline_probe_ & 1023) != 0) return false;
  deadline_hit_ = options_.deadline.expired();
  return deadline_hit_;
}

Status Executor::DeadlineStatus() const {
  return deadline_hit_ ? Status::Timeout("query deadline exceeded")
                       : Status::OK();
}

Status Executor::ExecB(const PlanNode& plan, const BatchSink& sink,
                       int64_t budget) {
  // Operator entry is rare (per node per query, plus join inner-side
  // re-entries), so an unconditional clock check here is cheap and catches
  // deadlines that elapsed inside a blocking child (sort, hash build).
  if (options_.deadline.expired()) {
    deadline_hit_ = true;
    return DeadlineStatus();
  }
  if (!options_.collect_stats) return DispatchB(plan, sink, budget);
  OpStats& st = plan.stats;
  ++st.invocations;
  // Count emission before the parent consumes, so a consumer that stops
  // mid-pipeline (LIMIT row budget, aborted sink) still leaves finalized
  // counters behind.
  BatchSink counting = [&st, &sink](RowBatch& batch) {
    st.rows_out += batch.size();
    ++st.batches;
    return sink(batch);
  };
  auto t0 = std::chrono::steady_clock::now();
  Status status = DispatchB(plan, counting, budget);
  st.ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return status;
}

Status Executor::DispatchB(const PlanNode& plan, const BatchSink& sink,
                           int64_t budget) {
  switch (plan.kind) {
    case PlanKind::kSeqScan:
      return ExecScanB(plan, sink, budget);
    case PlanKind::kParallelSeqScan:
      // A finite budget means a LIMIT bounds this scan; the serial path
      // preserves the touch-~limit-rows guarantee.
      return budget >= 0 ? ExecScanB(plan, sink, budget)
                         : ExecParallelScanB(plan, sink, budget);
    case PlanKind::kIndexScan:
      return ExecIndexScanB(plan, sink, budget);
    case PlanKind::kKeywordScan:
      return ExecKeywordScanB(plan, sink, budget);
    case PlanKind::kFilter:
      return ExecFilterB(plan, sink);
    case PlanKind::kProject:
      return ExecProjectB(plan, sink, budget);
    case PlanKind::kNestedLoopJoin:
      return ExecNestedLoopJoinB(plan, sink);
    case PlanKind::kHashJoin:
      return ExecHashJoinB(plan, sink);
    case PlanKind::kIndexNLJoin:
      return ExecIndexNLJoinB(plan, sink);
    case PlanKind::kSort:
      return ExecSortB(plan, sink);
    case PlanKind::kLimit:
      return ExecLimitB(plan, sink);
    case PlanKind::kAggregate:
      return ExecAggregateB(plan, sink);
    case PlanKind::kDistinct:
      return ExecDistinctB(plan, sink);
  }
  return Status::Internal("bad plan kind");
}

Status Executor::ExecScanB(const PlanNode& plan, const BatchSink& sink,
                           int64_t budget) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  BatchEmitter em(options_.batch_capacity, sink, budget);
  table->Scan(options_.snapshot_epoch, [&](RowId row, const Tuple& tuple) {
    if (DeadlineHit()) return false;
    return em.PushRef(&tuple, row);
  });
  XQ_RETURN_IF_ERROR(DeadlineStatus());
  em.Flush();
  return Status::OK();
}

namespace {

// Morsel geometry: enough morsels that work stealing can balance skew
// (several per worker slot), each at least `min_rows` so the per-morsel
// bookkeeping stays amortized over real work.
size_t MorselSpan(size_t total, size_t degree, size_t min_rows) {
  size_t max_morsels = degree * 8;
  size_t span = (total + max_morsels - 1) / max_morsels;
  return std::max(span, std::max<size_t>(min_rows, 1));
}

}  // namespace

Status Executor::ExecParallelScanB(const PlanNode& plan, const BatchSink& sink,
                                   int64_t budget,
                                   const CompiledExpr* pred) {
  (void)budget;
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  const uint64_t epoch = options_.snapshot_epoch;
  const size_t slots = table->num_slots();
  const size_t degree = EffectiveDegree(plan, slots);
  if (degree < 2) {
    // Single-core host, saturated pool, or small table: run the same fused
    // scan on the calling thread. This is the admission decision that keeps
    // parallel plans from ever losing to serial — fan-out only happens when
    // there is both width and work.
    BatchEmitter em(options_.batch_capacity, sink, -1);
    EvalScratch scratch;
    Status status;
    uint64_t emitted = 0;
    table->Scan(epoch, [&](RowId row, const Tuple& tuple) {
      if (DeadlineHit()) return false;
      if (pred != nullptr) {
        auto v = pred->EvalRowRef(tuple, &scratch);
        if (!v.ok()) {
          status = v.status();
          return false;
        }
        std::optional<bool> t = Truthiness(**v);
        if (!t.has_value() || !*t) return true;
      }
      ++emitted;
      return em.PushRef(&tuple, row);
    });
    XQ_RETURN_IF_ERROR(status);
    XQ_RETURN_IF_ERROR(DeadlineStatus());
    if (options_.collect_stats) {
      plan.stats.partition_rows.assign(1, emitted);
    }
    em.Flush();
    return Status::OK();
  }

  // Morsel-parallel: workers steal contiguous slot ranges from a shared
  // cursor and buffer their output batches per morsel; the driver then
  // emits morsels in index order, which for contiguous ranges is exactly
  // RowId order — byte-identical to the serial scan.
  exec::MorselQueue morsels(slots,
                            MorselSpan(slots, degree, options_.morsel_rows));
  std::vector<std::vector<RowBatch>> results(morsels.num_morsels());
  std::vector<Status> worker_status(degree);
  std::vector<uint64_t> worker_rows(degree, 0);
  std::vector<uint64_t> worker_morsels(degree, 0);
  const size_t capacity = options_.batch_capacity;
  const common::Deadline deadline = options_.deadline;
  Pool()->ParallelFor(degree, [&](size_t w) {
    EvalScratch scratch;
    uint64_t probe = 0;
    size_t mi, first, last;
    while (worker_status[w].ok() && morsels.Next(&mi, &first, &last)) {
      std::vector<RowBatch> out;
      RowBatch batch(capacity);
      table->ScanPartition(
          epoch, static_cast<RowId>(first), static_cast<RowId>(last),
          [&](RowId row, const Tuple& tuple) {
            if (deadline.set() && (++probe & 1023) == 0 &&
                deadline.expired()) {
              worker_status[w] = Status::Timeout("query deadline exceeded");
              return false;
            }
            if (pred != nullptr) {
              auto v = pred->EvalRowRef(tuple, &scratch);
              if (!v.ok()) {
                worker_status[w] = v.status();
                return false;
              }
              std::optional<bool> t = Truthiness(**v);
              if (!t.has_value() || !*t) return true;
            }
            batch.AppendRef(&tuple, row);
            ++worker_rows[w];
            if (batch.full()) {
              out.push_back(std::move(batch));
              batch = RowBatch(capacity);
            }
            return true;
          });
      if (!batch.empty()) out.push_back(std::move(batch));
      results[mi] = std::move(out);
      ++worker_morsels[w];
    }
  });
  for (const Status& s : worker_status) {
    if (!s.ok()) {
      if (s.code() == common::StatusCode::kTimeout) deadline_hit_ = true;
      return s;
    }
  }
  if (options_.collect_stats) {
    plan.stats.partition_rows = worker_rows;
    for (uint64_t m : worker_morsels) plan.stats.morsels += m;
  }
  for (auto& morsel_batches : results) {
    for (RowBatch& batch : morsel_batches) {
      if (!sink(batch)) return Status::OK();
    }
  }
  return Status::OK();
}

Status Executor::ExecIndexScanB(const PlanNode& plan, const BatchSink& sink,
                                int64_t budget) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  const rel::IndexEntry& entry = *plan.index;
  const uint64_t epoch = options_.snapshot_epoch;
  std::vector<RowId> matches = CollectIndexMatches(plan, entry);
  RowVerify verify = plan.eq_key.empty()
                         ? MakeRangeVerify(entry, plan, epoch)
                         : MakeEqVerify(entry, plan.eq_key, epoch);
  BatchEmitter em(options_.batch_capacity, sink, budget);
  XQ_ASSIGN_OR_RETURN(bool more, EmitRowIds(*table, matches, epoch, verify,
                                            options_.deadline, &em));
  (void)more;
  em.Flush();
  return Status::OK();
}

Status Executor::ExecKeywordScanB(const PlanNode& plan, const BatchSink& sink,
                                  int64_t budget) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  const rel::IndexEntry& entry = *plan.index;
  const uint64_t epoch = options_.snapshot_epoch;
  std::vector<RowId> rows;
  {
    std::shared_lock<std::shared_mutex> lock(entry.latch);
    rows = entry.inverted->LookupAll(plan.keyword);
  }
  RowVerify verify = MakeKeywordVerify(entry, plan.keyword, epoch);
  BatchEmitter em(options_.batch_capacity, sink, budget);
  XQ_ASSIGN_OR_RETURN(bool more, EmitRowIds(*table, rows, epoch, verify,
                                            options_.deadline, &em));
  (void)more;
  em.Flush();
  return Status::OK();
}

Status Executor::ExecFilterB(const PlanNode& plan, const BatchSink& sink) {
  const CompiledExpr& prog = *plan.predicate_prog;
  const PlanNode& child = *plan.children[0];
  // Execution-time fusion: over a bare scan, evaluate the predicate inside
  // the scan loop so rejected rows never enter a batch. The plan tree (and
  // its EXPLAIN rendering) is untouched; the child is marked `fused` so
  // EXPLAIN ANALYZE can explain its zeroed counters.
  if (child.kind == PlanKind::kSeqScan) {
    if (options_.collect_stats) child.stats.fused = true;
    XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(child.table));
    BatchEmitter em(options_.batch_capacity, sink, /*budget=*/-1);
    EvalScratch fused_scratch;
    Status status;
    table->Scan(options_.snapshot_epoch, [&](RowId row, const Tuple& tuple) {
      auto v = prog.EvalRowRef(tuple, &fused_scratch);
      if (!v.ok()) {
        status = v.status();
        return false;
      }
      std::optional<bool> t = Truthiness(**v);
      if (!t.has_value() || !*t) return true;
      return em.PushRef(&tuple, row);
    });
    XQ_RETURN_IF_ERROR(status);
    em.Flush();
    return Status::OK();
  }
  if (child.kind == PlanKind::kParallelSeqScan) {
    // The fused parallel scan still records its per-partition post-filter
    // counts into the child node (ExecParallelScanB writes them there).
    if (options_.collect_stats) child.stats.fused = true;
    return ExecParallelScanB(child, sink, /*budget=*/-1, &prog);
  }
  // Over a join, run the predicate on each candidate pair so rejected
  // pairs are never concatenated (fig-query containment filters reject
  // most of a join's output).
  if (child.kind == PlanKind::kNestedLoopJoin) {
    if (options_.collect_stats) child.stats.fused = true;
    return ExecNestedLoopJoinB(child, sink, &prog);
  }
  if (child.kind == PlanKind::kHashJoin) {
    if (options_.collect_stats) child.stats.fused = true;
    return ExecHashJoinB(child, sink, &prog);
  }
  if (child.kind == PlanKind::kIndexNLJoin) {
    if (options_.collect_stats) child.stats.fused = true;
    return ExecIndexNLJoinB(child, sink, &prog);
  }
  EvalScratch scratch;
  Status inner_status;
  XQ_RETURN_IF_ERROR(ExecB(
      *plan.children[0],
      [&](RowBatch& batch) {
        Status s = prog.FilterBatch(&batch, &scratch);
        if (!s.ok()) {
          inner_status = s;
          return false;
        }
        if (batch.empty()) return true;
        return sink(batch);
      },
      /*budget=*/-1));
  return inner_status;
}

Status Executor::ExecProjectB(const PlanNode& plan, const BatchSink& sink,
                              int64_t budget) {
  BatchEmitter em(options_.batch_capacity, sink, budget);
  EvalScratch scratch;
  Status inner_status;
  // Bare column references (the common SELECT-list shape) read their slot
  // directly instead of running the interpreter per row.
  std::vector<int> slots;
  slots.reserve(plan.project_progs.size());
  for (const CompiledExpr& prog : plan.project_progs) {
    slots.push_back(prog.single_slot());
  }
  XQ_RETURN_IF_ERROR(ExecB(
      *plan.children[0],
      [&](RowBatch& batch) {
        for (size_t i = 0; i < batch.size(); ++i) {
          const Tuple& row = batch.row(i);
          Tuple out;
          out.reserve(plan.project_progs.size());
          for (size_t j = 0; j < plan.project_progs.size(); ++j) {
            int s = slots[j];
            if (s >= 0 && static_cast<size_t>(s) < row.size()) {
              out.push_back(row[static_cast<size_t>(s)]);
              continue;
            }
            auto v = plan.project_progs[j].EvalRowRef(row, &scratch);
            if (!v.ok()) {
              inner_status = v.status();
              return false;
            }
            out.push_back(**v);
          }
          if (!em.PushOwned(std::move(out))) return false;
        }
        return true;
      },
      budget));
  XQ_RETURN_IF_ERROR(inner_status);
  em.Flush();
  return Status::OK();
}

Status Executor::ExecNestedLoopJoinB(const PlanNode& plan,
                                     const BatchSink& sink,
                                     const CompiledExpr* residual) {
  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> inner,
                      ExecuteToVector(*plan.children[1]));
  const CompiledExpr* pred =
      plan.predicate_prog.has_value() ? &*plan.predicate_prog : nullptr;
  BatchEmitter em(options_.batch_capacity, sink, /*budget=*/-1);
  EvalScratch scratch;
  Status inner_status;
  // Both the join predicate and any fused residual filter are evaluated
  // on the (left, right) pair; only passing pairs are materialized.
  auto pair_ok = [&](const CompiledExpr* prog, const Tuple& left,
                     const Tuple& right, bool* ok) {
    if (prog == nullptr) {
      *ok = true;
      return true;
    }
    auto pass = PairPasses(*prog, left, right, &scratch);
    if (!pass.ok()) {
      inner_status = pass.status();
      return false;
    }
    *ok = *pass;
    return true;
  };
  XQ_RETURN_IF_ERROR(ExecB(
      *plan.children[0],
      [&](RowBatch& batch) {
        for (size_t i = 0; i < batch.size(); ++i) {
          const Tuple& left = batch.row(i);
          for (const Tuple& right : inner) {
            if (DeadlineHit()) {
              inner_status = DeadlineStatus();
              return false;
            }
            bool ok = false;
            if (!pair_ok(pred, left, right, &ok)) return false;
            if (!ok) continue;
            if (!pair_ok(residual, left, right, &ok)) return false;
            if (!ok) continue;
            if (!em.PushOwned(Concat(left, right))) return false;
          }
        }
        return true;
      },
      /*budget=*/-1));
  XQ_RETURN_IF_ERROR(inner_status);
  em.Flush();
  return Status::OK();
}

Status Executor::ExecHashJoinB(const PlanNode& plan, const BatchSink& sink,
                               const CompiledExpr* residual) {
  // Build on the right child.
  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> build,
                      ExecuteToVector(*plan.children[1]));
  std::vector<int> right_slots = SingleSlots(plan.right_key_progs);
  std::vector<int> left_slots = SingleSlots(plan.left_key_progs);
  using JoinTable =
      std::unordered_map<CompositeKey, std::vector<size_t>,
                         rel::CompositeKeyHasher, rel::CompositeKeyEq>;
  const common::Deadline deadline = options_.deadline;
  const size_t build_degree = EffectiveDegree(plan, build.size());
  const size_t parts = build_degree >= 2 ? build_degree : 1;
  std::vector<JoinTable> ht(parts);
  rel::CompositeKeyHasher part_hasher;
  if (parts == 1) {
    EvalScratch scratch;
    ht[0].reserve(build.size());
    for (size_t i = 0; i < build.size(); ++i) {
      if (DeadlineHit()) return DeadlineStatus();
      CompositeKey key;
      bool has_null = false;
      for (size_t j = 0; j < plan.right_key_progs.size(); ++j) {
        XQ_ASSIGN_OR_RETURN(
            const Value* v,
            EvalKey(plan.right_key_progs[j], right_slots[j], build[i],
                    &scratch));
        if (v->is_null()) {
          has_null = true;
          break;
        }
        key.push_back(*v);
      }
      if (!has_null) ht[0][std::move(key)].push_back(i);
    }
  } else {
    // Parallel build, two phases. Phase 1: evaluate keys and hashes over
    // morsels of build rows. Phase 2: each worker owns exactly one hash
    // partition and inserts its rows in build-row order — no shared-bucket
    // locking, and per-key row lists come out in the same order the serial
    // build produces.
    std::vector<CompositeKey> keys(build.size());
    std::vector<size_t> hashes(build.size());
    std::vector<uint8_t> null_key(build.size(), 0);
    exec::MorselQueue mq(build.size(),
                         MorselSpan(build.size(), parts, options_.morsel_rows));
    std::vector<Status> build_status(parts);
    Pool()->ParallelFor(parts, [&](size_t w) {
      EvalScratch scratch;
      uint64_t probe_ticks = 0;
      size_t mi, first, last;
      while (build_status[w].ok() && mq.Next(&mi, &first, &last)) {
        for (size_t i = first; i < last; ++i) {
          if (deadline.set() && (++probe_ticks & 255) == 0 &&
              deadline.expired()) {
            build_status[w] = Status::Timeout("query deadline exceeded");
            break;
          }
          CompositeKey key;
          bool has_null = false;
          for (size_t j = 0; j < plan.right_key_progs.size(); ++j) {
            auto v = EvalKey(plan.right_key_progs[j], right_slots[j],
                             build[i], &scratch);
            if (!v.ok()) {
              build_status[w] = v.status();
              break;
            }
            if ((*v)->is_null()) {
              has_null = true;  // NULL never joins
              break;
            }
            key.push_back(**v);
          }
          if (!build_status[w].ok()) break;
          if (has_null) {
            null_key[i] = 1;
            continue;
          }
          hashes[i] = part_hasher(key);
          keys[i] = std::move(key);
        }
      }
    });
    for (const Status& s : build_status) {
      if (!s.ok()) {
        if (s.code() == common::StatusCode::kTimeout) deadline_hit_ = true;
        return s;
      }
    }
    Pool()->ParallelFor(parts, [&](size_t p) {
      JoinTable& part = ht[p];
      part.reserve(build.size() / parts + 1);
      for (size_t i = 0; i < build.size(); ++i) {
        if (null_key[i] != 0) continue;
        if (hashes[i] % parts == p) part[std::move(keys[i])].push_back(i);
      }
    });
  }

  BatchEmitter em(options_.batch_capacity, sink, /*budget=*/-1);
  // Per-row probe shared by the streamed, serial-vector, and parallel
  // paths: evaluates the left key, finds the partition's matches, applies
  // the residual, and hands each joined row to `out`. Returns false when
  // `status` was set (error) or `out` declined more rows.
  auto probe_row = [&](const Tuple& left, EvalScratch* scratch,
                       CompositeKey* probe, Status* status,
                       const std::function<bool(Tuple&&)>& out) {
    probe->clear();
    for (size_t j = 0; j < plan.left_key_progs.size(); ++j) {
      auto v = EvalKey(plan.left_key_progs[j], left_slots[j], left, scratch);
      if (!v.ok()) {
        *status = v.status();
        return false;
      }
      if ((*v)->is_null()) return true;  // NULL never joins
      probe->push_back(**v);
    }
    const JoinTable& part =
        parts == 1 ? ht[0] : ht[part_hasher(*probe) % parts];
    auto it = part.find(*probe);
    if (it == part.end()) return true;
    for (size_t b : it->second) {
      if (residual != nullptr) {
        auto pass = PairPasses(*residual, left, build[b], scratch);
        if (!pass.ok()) {
          *status = pass.status();
          return false;
        }
        if (!*pass) continue;
      }
      if (!out(Concat(left, build[b]))) return false;
    }
    return true;
  };

  // Probe goes parallel only when the plan is annotated AND the pool has
  // spare width right now; otherwise stream the left child so nothing is
  // materialized that serial execution would not have materialized.
  const bool pool_wide =
      plan.parallel_degree >= 2 &&
      Pool()->AdmitDegree(static_cast<size_t>(plan.parallel_degree)) >= 2;
  if (!pool_wide) {
    Status inner_status;
    EvalScratch scratch;
    CompositeKey probe;  // reused across rows
    XQ_RETURN_IF_ERROR(ExecB(
        *plan.children[0],
        [&](RowBatch& batch) {
          for (size_t i = 0; i < batch.size(); ++i) {
            if (DeadlineHit()) {
              inner_status = DeadlineStatus();
              return false;
            }
            if (!probe_row(batch.row(i), &scratch, &probe, &inner_status,
                           [&](Tuple&& t) {
                             return em.PushOwned(std::move(t));
                           })) {
              return false;
            }
          }
          return true;
        },
        /*budget=*/-1));
    XQ_RETURN_IF_ERROR(inner_status);
    em.Flush();
    return Status::OK();
  }

  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> outer,
                      ExecuteToVector(*plan.children[0]));
  const size_t probe_degree = EffectiveDegree(plan, outer.size());
  if (probe_degree < 2) {
    Status inner_status;
    EvalScratch scratch;
    CompositeKey probe;
    for (const Tuple& left : outer) {
      if (DeadlineHit()) return DeadlineStatus();
      if (!probe_row(left, &scratch, &probe, &inner_status, [&](Tuple&& t) {
            return em.PushOwned(std::move(t));
          })) {
        XQ_RETURN_IF_ERROR(inner_status);
        break;  // emitter declined (downstream stop)
      }
    }
    em.Flush();
    return Status::OK();
  }

  // Parallel probe: workers steal morsels of outer rows, buffer their
  // joined rows per morsel, and the driver emits morsels in index order —
  // the exact sequence the streamed serial probe produces.
  exec::MorselQueue mq(outer.size(),
                       MorselSpan(outer.size(), probe_degree,
                                  options_.morsel_rows));
  std::vector<std::vector<Tuple>> results(mq.num_morsels());
  std::vector<Status> probe_status(probe_degree);
  std::vector<uint64_t> worker_rows(probe_degree, 0);
  std::vector<uint64_t> worker_morsels(probe_degree, 0);
  Pool()->ParallelFor(probe_degree, [&](size_t w) {
    EvalScratch scratch;
    CompositeKey probe;
    uint64_t probe_ticks = 0;
    size_t mi, first, last;
    while (probe_status[w].ok() && mq.Next(&mi, &first, &last)) {
      std::vector<Tuple> out;
      for (size_t i = first; i < last; ++i) {
        if (deadline.set() && (++probe_ticks & 255) == 0 &&
            deadline.expired()) {
          probe_status[w] = Status::Timeout("query deadline exceeded");
          break;
        }
        if (!probe_row(outer[i], &scratch, &probe, &probe_status[w],
                       [&](Tuple&& t) {
                         out.push_back(std::move(t));
                         return true;
                       })) {
          break;
        }
      }
      if (!probe_status[w].ok()) break;
      worker_rows[w] += out.size();
      results[mi] = std::move(out);
      ++worker_morsels[w];
    }
  });
  for (const Status& s : probe_status) {
    if (!s.ok()) {
      if (s.code() == common::StatusCode::kTimeout) deadline_hit_ = true;
      return s;
    }
  }
  if (options_.collect_stats) {
    plan.stats.partition_rows = worker_rows;
    for (uint64_t m : worker_morsels) plan.stats.morsels += m;
  }
  for (auto& morsel_rows : results) {
    for (Tuple& t : morsel_rows) {
      if (!em.PushOwned(std::move(t))) {
        em.Flush();
        return Status::OK();
      }
    }
  }
  em.Flush();
  return Status::OK();
}

Status Executor::ExecIndexNLJoinB(const PlanNode& plan,
                                  const BatchSink& sink,
                                  const CompiledExpr* residual) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  const rel::IndexEntry& entry = *plan.index;
  const uint64_t epoch = options_.snapshot_epoch;
  BatchEmitter em(options_.batch_capacity, sink, /*budget=*/-1);
  EvalScratch scratch;
  Status inner_status;
  CompositeKey key;            // reused across rows
  std::vector<RowId> fetched;  // reused index-probe buffer
  std::vector<int> key_slots = SingleSlots(plan.outer_key_progs);
  XQ_RETURN_IF_ERROR(ExecB(
      *plan.children[0],
      [&](RowBatch& batch) {
        for (size_t i = 0; i < batch.size(); ++i) {
          if (DeadlineHit()) {
            inner_status = DeadlineStatus();
            return false;
          }
          const Tuple& outer = batch.row(i);
          key.clear();
          bool has_null = false;
          for (size_t j = 0; j < plan.outer_key_progs.size(); ++j) {
            auto v = EvalKey(plan.outer_key_progs[j], key_slots[j], outer,
                             &scratch);
            if (!v.ok()) {
              inner_status = v.status();
              return false;
            }
            if ((*v)->is_null()) {
              has_null = true;
              break;
            }
            key.push_back(**v);
          }
          if (has_null) continue;
          // Coerce the probe key to the indexed column types so INT
          // probes hit TEXT-typed keys the way a filter comparison would.
          for (size_t k = 0; k < key.size(); ++k) {
            ValueType want =
                table->schema().column(entry.column_indexes[k]).type;
            if (key[k].type() != want) {
              auto cast = key[k].CastTo(want);
              if (cast.ok()) key[k] = std::move(*cast);
            }
          }
          fetched.clear();
          {
            std::shared_lock<std::shared_mutex> idx_lock(entry.latch);
            if (entry.def.kind == rel::IndexKind::kHash) {
              const std::vector<RowId>* rows = entry.hash->Lookup(key);
              if (rows != nullptr) fetched = *rows;
            } else if (key.size() == entry.def.columns.size()) {
              fetched = entry.btree->Lookup(key);
            } else {
              entry.btree->ScanPrefix(
                  key, [&](const CompositeKey&, const std::vector<RowId>& r) {
                    fetched.insert(fetched.end(), r.begin(), r.end());
                    return true;
                  });
            }
          }
          RowVerify verify = MakeEqVerify(entry, key, epoch);
          for (RowId row : fetched) {
            auto tuple = table->Get(row, epoch);
            if (!tuple.ok()) {
              if (tuple.status().code() == common::StatusCode::kNotFound) {
                continue;  // invisible at the snapshot epoch
              }
              inner_status = tuple.status();
              return false;
            }
            if (verify && !verify(**tuple)) continue;
            if (residual != nullptr) {
              auto pass = PairPasses(*residual, outer, **tuple, &scratch);
              if (!pass.ok()) {
                inner_status = pass.status();
                return false;
              }
              if (!*pass) continue;
            }
            if (!em.PushOwned(Concat(outer, **tuple))) return false;
          }
        }
        return true;
      },
      /*budget=*/-1));
  XQ_RETURN_IF_ERROR(inner_status);
  em.Flush();
  return Status::OK();
}

Status Executor::ExecSortB(const PlanNode& plan, const BatchSink& sink) {
  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                      ExecuteToVector(*plan.children[0]));
  std::vector<int> key_slots = SingleSlots(plan.sort_key_progs);
  const size_t degree = EffectiveDegree(plan, rows.size());
  if (degree < 2) {
    EvalScratch scratch;
    std::vector<std::pair<CompositeKey, size_t>> keyed;
    keyed.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      CompositeKey key;
      for (size_t j = 0; j < plan.sort_key_progs.size(); ++j) {
        XQ_ASSIGN_OR_RETURN(
            const Value* v,
            EvalKey(plan.sort_key_progs[j], key_slots[j], rows[i], &scratch));
        key.push_back(*v);
      }
      keyed.emplace_back(std::move(key), i);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       for (size_t k = 0; k < plan.sort_keys.size(); ++k) {
                         int c = Value::Compare(a.first[k], b.first[k]);
                         if (c != 0) {
                           return plan.sort_keys[k].desc ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
    BatchEmitter em(options_.batch_capacity, sink, /*budget=*/-1);
    for (const auto& [key, i] : keyed) {
      if (!em.PushRef(&rows[i], 0)) return Status::OK();
    }
    em.Flush();
    return Status::OK();
  }

  // Parallel sort: each worker evaluates keys and sorts the morsels it
  // steals; the driver then k-way-merges the per-morsel runs. Both stages
  // use one TOTAL order — sort keys, then original input index ascending —
  // which is exactly the sequence stable_sort yields (equal-key rows in
  // input order), so the merged output is byte-identical to serial.
  const size_t n = rows.size();
  std::vector<CompositeKey> keys(n);
  exec::MorselQueue mq(n, MorselSpan(n, degree, options_.morsel_rows));
  std::vector<std::vector<size_t>> runs(mq.num_morsels());
  std::vector<Status> worker_status(degree);
  std::vector<uint64_t> worker_rows(degree, 0);
  std::vector<uint64_t> worker_morsels(degree, 0);
  const common::Deadline deadline = options_.deadline;
  auto row_less = [&](size_t a, size_t b) {
    for (size_t k = 0; k < plan.sort_keys.size(); ++k) {
      int c = Value::Compare(keys[a][k], keys[b][k]);
      if (c != 0) return plan.sort_keys[k].desc ? c > 0 : c < 0;
    }
    return a < b;
  };
  Pool()->ParallelFor(degree, [&](size_t w) {
    EvalScratch scratch;
    size_t mi, first, last;
    while (worker_status[w].ok() && mq.Next(&mi, &first, &last)) {
      if (deadline.set() && deadline.expired()) {
        worker_status[w] = Status::Timeout("query deadline exceeded");
        break;
      }
      std::vector<size_t> run;
      run.reserve(last - first);
      for (size_t i = first; i < last; ++i) {
        CompositeKey key;
        for (size_t j = 0; j < plan.sort_key_progs.size(); ++j) {
          auto v =
              EvalKey(plan.sort_key_progs[j], key_slots[j], rows[i], &scratch);
          if (!v.ok()) {
            worker_status[w] = v.status();
            break;
          }
          key.push_back(**v);
        }
        if (!worker_status[w].ok()) break;
        keys[i] = std::move(key);
        run.push_back(i);
      }
      if (!worker_status[w].ok()) break;
      std::sort(run.begin(), run.end(), row_less);
      runs[mi] = std::move(run);
      worker_rows[w] += last - first;
      ++worker_morsels[w];
    }
  });
  for (const Status& s : worker_status) {
    if (!s.ok()) {
      if (s.code() == common::StatusCode::kTimeout) deadline_hit_ = true;
      return s;
    }
  }
  if (options_.collect_stats) {
    plan.stats.partition_rows = worker_rows;
    for (uint64_t m : worker_morsels) plan.stats.morsels += m;
  }
  // K-way merge of the sorted runs under the same total order.
  struct Cursor {
    size_t run;
    size_t pos;
  };
  auto cursor_greater = [&](const Cursor& x, const Cursor& y) {
    return row_less(runs[y.run][y.pos], runs[x.run][x.pos]);
  };
  std::vector<Cursor> heap;
  heap.reserve(runs.size());
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push_back({r, 0});
  }
  std::make_heap(heap.begin(), heap.end(), cursor_greater);
  BatchEmitter em(options_.batch_capacity, sink, /*budget=*/-1);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cursor_greater);
    Cursor cur = heap.back();
    heap.pop_back();
    if (!em.PushRef(&rows[runs[cur.run][cur.pos]], 0)) return Status::OK();
    if (++cur.pos < runs[cur.run].size()) {
      heap.push_back(cur);
      std::push_heap(heap.begin(), heap.end(), cursor_greater);
    }
  }
  em.Flush();
  return Status::OK();
}

Status Executor::ExecLimitB(const PlanNode& plan, const BatchSink& sink) {
  int64_t child_budget =
      plan.limit >= 0 ? plan.offset + plan.limit : int64_t{-1};
  int64_t to_skip = plan.offset;
  int64_t remaining = plan.limit;  // < 0 = unlimited
  return ExecB(
      *plan.children[0],
      [&](RowBatch& batch) {
        if (to_skip > 0) {
          size_t drop = static_cast<size_t>(
              std::min<int64_t>(to_skip, static_cast<int64_t>(batch.size())));
          batch.DropFront(drop);
          to_skip -= static_cast<int64_t>(drop);
          if (batch.empty()) return true;
        }
        bool done = false;
        if (remaining >= 0) {
          if (static_cast<int64_t>(batch.size()) >= remaining) {
            batch.Truncate(static_cast<size_t>(remaining));
            remaining = 0;
            done = true;
          } else {
            remaining -= static_cast<int64_t>(batch.size());
          }
        }
        if (!batch.empty() && !sink(batch)) return false;
        return !done;
      },
      child_budget);
}

Status Executor::ExecAggregateB(const PlanNode& plan, const BatchSink& sink) {
  // Hash-group accumulator: index for lookup plus keys/states in
  // first-seen order (group output order matches input order).
  struct GroupAcc {
    std::unordered_map<CompositeKey, size_t, rel::CompositeKeyHasher,
                       rel::CompositeKeyEq>
        index;
    std::vector<CompositeKey> keys;
    std::vector<std::vector<AggState>> states;
  };
  std::vector<int> group_slots = SingleSlots(plan.group_progs);
  std::vector<int> arg_slots;
  arg_slots.reserve(plan.agg_arg_progs.size());
  for (const auto& prog : plan.agg_arg_progs) {
    arg_slots.push_back(prog.has_value() ? prog->single_slot() : -1);
  }
  // One row folded into `acc` — the streaming-serial path and each
  // parallel worker's thread-local partial share this.
  auto accumulate = [&](const Tuple& tuple, GroupAcc* acc,
                        EvalScratch* scratch) -> Status {
    CompositeKey key;
    for (size_t j = 0; j < plan.group_progs.size(); ++j) {
      XQ_ASSIGN_OR_RETURN(
          const Value* v,
          EvalKey(plan.group_progs[j], group_slots[j], tuple, scratch));
      key.push_back(*v);
    }
    size_t slot;
    auto it = acc->index.find(key);
    if (it == acc->index.end()) {
      slot = acc->keys.size();
      acc->index.emplace(key, slot);
      acc->keys.push_back(std::move(key));
      acc->states.emplace_back(plan.aggs.size());
    } else {
      slot = it->second;
    }
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      if (!plan.agg_arg_progs[a].has_value()) {
        XQ_RETURN_IF_ERROR(
            UpdateAggValue(plan.aggs[a].func, nullptr, &acc->states[slot][a]));
      } else {
        XQ_ASSIGN_OR_RETURN(
            const Value* v,
            EvalKey(*plan.agg_arg_progs[a], arg_slots[a], tuple, scratch));
        XQ_RETURN_IF_ERROR(
            UpdateAggValue(plan.aggs[a].func, v, &acc->states[slot][a]));
      }
    }
    return Status::OK();
  };

  GroupAcc total;
  const bool pool_wide =
      plan.parallel_degree >= 2 &&
      Pool()->AdmitDegree(static_cast<size_t>(plan.parallel_degree)) >= 2;
  if (!pool_wide) {
    EvalScratch scratch;
    Status inner_status;
    XQ_RETURN_IF_ERROR(ExecB(
        *plan.children[0],
        [&](RowBatch& batch) {
          for (size_t r = 0; r < batch.size(); ++r) {
            Status s = accumulate(batch.row(r), &total, &scratch);
            if (!s.ok()) {
              inner_status = s;
              return false;
            }
          }
          return true;
        },
        /*budget=*/-1));
    XQ_RETURN_IF_ERROR(inner_status);
  } else {
    XQ_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                        ExecuteToVector(*plan.children[0]));
    const size_t degree = EffectiveDegree(plan, input.size());
    if (degree < 2) {
      EvalScratch scratch;
      for (const Tuple& tuple : input) {
        if (DeadlineHit()) return DeadlineStatus();
        XQ_RETURN_IF_ERROR(accumulate(tuple, &total, &scratch));
      }
    } else {
      // Parallel aggregation: workers fold stolen morsels into per-morsel
      // partials; the driver merges partials in morsel order. A group's
      // first appearance in the merge is (earliest morsel, earliest row
      // within it) = its earliest input row, so group output order is
      // identical to the serial scan. Integer aggregates merge exactly;
      // double sums are deterministic for a fixed morsel geometry but may
      // differ from serial in the last ulp (association order changes).
      const size_t n = input.size();
      exec::MorselQueue mq(n, MorselSpan(n, degree, options_.morsel_rows));
      std::vector<GroupAcc> partials(mq.num_morsels());
      std::vector<Status> worker_status(degree);
      std::vector<uint64_t> worker_rows(degree, 0);
      std::vector<uint64_t> worker_morsels(degree, 0);
      const common::Deadline deadline = options_.deadline;
      Pool()->ParallelFor(degree, [&](size_t w) {
        EvalScratch scratch;
        uint64_t probe_ticks = 0;
        size_t mi, first, last;
        while (worker_status[w].ok() && mq.Next(&mi, &first, &last)) {
          GroupAcc acc;
          for (size_t i = first; i < last; ++i) {
            if (deadline.set() && (++probe_ticks & 255) == 0 &&
                deadline.expired()) {
              worker_status[w] = Status::Timeout("query deadline exceeded");
              break;
            }
            Status s = accumulate(input[i], &acc, &scratch);
            if (!s.ok()) {
              worker_status[w] = s;
              break;
            }
          }
          if (!worker_status[w].ok()) break;
          partials[mi] = std::move(acc);
          worker_rows[w] += last - first;
          ++worker_morsels[w];
        }
      });
      for (const Status& s : worker_status) {
        if (!s.ok()) {
          if (s.code() == common::StatusCode::kTimeout) deadline_hit_ = true;
          return s;
        }
      }
      if (options_.collect_stats) {
        plan.stats.partition_rows = worker_rows;
        for (uint64_t m : worker_morsels) plan.stats.morsels += m;
      }
      for (GroupAcc& acc : partials) {
        for (size_t k = 0; k < acc.keys.size(); ++k) {
          auto it = total.index.find(acc.keys[k]);
          if (it == total.index.end()) {
            size_t slot = total.keys.size();
            total.index.emplace(acc.keys[k], slot);
            total.keys.push_back(std::move(acc.keys[k]));
            total.states.push_back(std::move(acc.states[k]));
            continue;
          }
          for (size_t a = 0; a < plan.aggs.size(); ++a) {
            MergeAggState(plan.aggs[a].func, &total.states[it->second][a],
                          acc.states[k][a]);
          }
        }
      }
    }
  }
  // Grand aggregate over an empty input still yields one row.
  if (total.keys.empty() && plan.group_exprs.empty()) {
    total.keys.emplace_back();
    total.states.emplace_back(plan.aggs.size());
  }
  BatchEmitter em(options_.batch_capacity, sink, /*budget=*/-1);
  for (size_t g = 0; g < total.keys.size(); ++g) {
    Tuple out = total.keys[g];
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      out.push_back(FinalizeAgg(plan.aggs[a], total.states[g][a]));
    }
    if (!em.PushOwned(std::move(out))) return Status::OK();
  }
  em.Flush();
  return Status::OK();
}

Status Executor::ExecDistinctB(const PlanNode& plan, const BatchSink& sink) {
  using SeenSet = std::unordered_set<CompositeKey, rel::CompositeKeyHasher,
                                     rel::CompositeKeyEq>;
  const bool pool_wide =
      plan.parallel_degree >= 2 &&
      Pool()->AdmitDegree(static_cast<size_t>(plan.parallel_degree)) >= 2;
  if (!pool_wide) {
    SeenSet seen;
    return ExecB(
        *plan.children[0],
        [&](RowBatch& batch) {
          std::vector<uint32_t> next;
          next.reserve(batch.size());
          const std::vector<uint32_t>& sel = batch.sel();
          for (size_t i = 0; i < sel.size(); ++i) {
            if (seen.insert(batch.row(i)).second) next.push_back(sel[i]);
          }
          batch.SetSel(std::move(next));
          if (batch.empty()) return true;
          return sink(batch);
        },
        /*budget=*/-1);
  }
  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                      ExecuteToVector(*plan.children[0]));
  const size_t degree = EffectiveDegree(plan, input.size());
  BatchEmitter em(options_.batch_capacity, sink, /*budget=*/-1);
  if (degree < 2) {
    SeenSet seen;
    for (const Tuple& tuple : input) {
      if (DeadlineHit()) return DeadlineStatus();
      if (seen.insert(tuple).second) {
        if (!em.PushRef(&tuple, 0)) return Status::OK();
      }
    }
    em.Flush();
    return Status::OK();
  }
  // Parallel distinct: each worker dedups its stolen morsels locally
  // (first-seen row indexes, in row order); the driver re-dedups the
  // local survivors in morsel order against a global set. A value's first
  // surviving index is its earliest input row, so output order equals the
  // streaming-serial path.
  const size_t n = input.size();
  exec::MorselQueue mq(n, MorselSpan(n, degree, options_.morsel_rows));
  std::vector<std::vector<size_t>> locals(mq.num_morsels());
  std::vector<Status> worker_status(degree);
  std::vector<uint64_t> worker_rows(degree, 0);
  std::vector<uint64_t> worker_morsels(degree, 0);
  const common::Deadline deadline = options_.deadline;
  Pool()->ParallelFor(degree, [&](size_t w) {
    uint64_t probe_ticks = 0;
    size_t mi, first, last;
    while (worker_status[w].ok() && mq.Next(&mi, &first, &last)) {
      SeenSet seen;
      std::vector<size_t> uniq;
      for (size_t i = first; i < last; ++i) {
        if (deadline.set() && (++probe_ticks & 255) == 0 &&
            deadline.expired()) {
          worker_status[w] = Status::Timeout("query deadline exceeded");
          break;
        }
        if (seen.insert(input[i]).second) uniq.push_back(i);
      }
      if (!worker_status[w].ok()) break;
      locals[mi] = std::move(uniq);
      worker_rows[w] += last - first;
      ++worker_morsels[w];
    }
  });
  for (const Status& s : worker_status) {
    if (!s.ok()) {
      if (s.code() == common::StatusCode::kTimeout) deadline_hit_ = true;
      return s;
    }
  }
  if (options_.collect_stats) {
    plan.stats.partition_rows = worker_rows;
    for (uint64_t m : worker_morsels) plan.stats.morsels += m;
  }
  SeenSet global;
  for (const std::vector<size_t>& uniq : locals) {
    for (size_t i : uniq) {
      if (global.insert(input[i]).second) {
        if (!em.PushRef(&input[i], 0)) return Status::OK();
      }
    }
  }
  em.Flush();
  return Status::OK();
}

// ---------------------------------------------------------------------
// Row-at-a-time reference path (pre-batching executor, kept verbatim).
// ---------------------------------------------------------------------

Status Executor::ExecuteRowAtATime(const PlanNode& plan, const RowSink& sink) {
  switch (plan.kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kParallelSeqScan:  // baseline path stays serial
      return ExecScanRow(plan, sink);
    case PlanKind::kIndexScan:
      return ExecIndexScanRow(plan, sink);
    case PlanKind::kKeywordScan:
      return ExecKeywordScanRow(plan, sink);
    case PlanKind::kFilter:
      return ExecFilterRow(plan, sink);
    case PlanKind::kProject:
      return ExecProjectRow(plan, sink);
    case PlanKind::kNestedLoopJoin:
      return ExecNestedLoopJoinRow(plan, sink);
    case PlanKind::kHashJoin:
      return ExecHashJoinRow(plan, sink);
    case PlanKind::kIndexNLJoin:
      return ExecIndexNLJoinRow(plan, sink);
    case PlanKind::kSort:
      return ExecSortRow(plan, sink);
    case PlanKind::kLimit:
      return ExecLimitRow(plan, sink);
    case PlanKind::kAggregate:
      return ExecAggregateRow(plan, sink);
    case PlanKind::kDistinct:
      return ExecDistinctRow(plan, sink);
  }
  return Status::Internal("bad plan kind");
}

Result<std::vector<Tuple>> Executor::CollectRows(const PlanNode& plan) {
  std::vector<Tuple> rows;
  XQ_RETURN_IF_ERROR(ExecuteRowAtATime(plan, [&](const Tuple& t) {
    rows.push_back(t);
    return true;
  }));
  return rows;
}

Status Executor::ExecScanRow(const PlanNode& plan, const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  table->Scan(options_.snapshot_epoch,
              [&](RowId, const Tuple& tuple) { return sink(tuple); });
  return Status::OK();
}

namespace {

// Emits the tuples visible at `epoch` behind `rows` into `sink`; returns
// false on stop. Same skip/re-verify semantics as the batched EmitRowIds.
Result<bool> EmitRows(const rel::Table& table, const std::vector<RowId>& rows,
                      uint64_t epoch, const RowVerify& verify,
                      const Executor::RowSink& sink) {
  for (RowId row : rows) {
    auto tuple = table.Get(row, epoch);
    if (!tuple.ok()) {
      if (tuple.status().code() == common::StatusCode::kNotFound) continue;
      return tuple.status();
    }
    if (verify && !verify(**tuple)) continue;
    if (!sink(**tuple)) return false;
  }
  return true;
}

}  // namespace

Status Executor::ExecIndexScanRow(const PlanNode& plan, const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  const rel::IndexEntry& entry = *plan.index;
  const uint64_t epoch = options_.snapshot_epoch;
  std::vector<RowId> matches = CollectIndexMatches(plan, entry);
  RowVerify verify = plan.eq_key.empty()
                         ? MakeRangeVerify(entry, plan, epoch)
                         : MakeEqVerify(entry, plan.eq_key, epoch);
  XQ_ASSIGN_OR_RETURN(bool more,
                      EmitRows(*table, matches, epoch, verify, sink));
  (void)more;
  return Status::OK();
}

Status Executor::ExecKeywordScanRow(const PlanNode& plan,
                                    const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  const rel::IndexEntry& entry = *plan.index;
  const uint64_t epoch = options_.snapshot_epoch;
  std::vector<RowId> rows;
  {
    std::shared_lock<std::shared_mutex> lock(entry.latch);
    rows = entry.inverted->LookupAll(plan.keyword);
  }
  RowVerify verify = MakeKeywordVerify(entry, plan.keyword, epoch);
  XQ_ASSIGN_OR_RETURN(bool more, EmitRows(*table, rows, epoch, verify, sink));
  (void)more;
  return Status::OK();
}

Status Executor::ExecFilterRow(const PlanNode& plan, const RowSink& sink) {
  Status inner_status;
  XQ_RETURN_IF_ERROR(
      ExecuteRowAtATime(*plan.children[0], [&](const Tuple& tuple) {
        auto pass = EvalPredicate(*plan.predicate, tuple);
        if (!pass.ok()) {
          inner_status = pass.status();
          return false;
        }
        if (pass->has_value() && **pass) return sink(tuple);
        return true;
      }));
  return inner_status;
}

Status Executor::ExecProjectRow(const PlanNode& plan, const RowSink& sink) {
  Status inner_status;
  XQ_RETURN_IF_ERROR(
      ExecuteRowAtATime(*plan.children[0], [&](const Tuple& tuple) {
        Tuple out;
        out.reserve(plan.project_exprs.size());
        for (const ExprPtr& e : plan.project_exprs) {
          auto v = Eval(*e, tuple);
          if (!v.ok()) {
            inner_status = v.status();
            return false;
          }
          out.push_back(std::move(*v));
        }
        return sink(out);
      }));
  return inner_status;
}

Status Executor::ExecNestedLoopJoinRow(const PlanNode& plan,
                                       const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> inner,
                      CollectRows(*plan.children[1]));
  Status inner_status;
  XQ_RETURN_IF_ERROR(
      ExecuteRowAtATime(*plan.children[0], [&](const Tuple& left) {
        for (const Tuple& right : inner) {
          Tuple combined = left;
          combined.insert(combined.end(), right.begin(), right.end());
          if (plan.predicate) {
            auto pass = EvalPredicate(*plan.predicate, combined);
            if (!pass.ok()) {
              inner_status = pass.status();
              return false;
            }
            if (!pass->has_value() || !**pass) continue;
          }
          if (!sink(combined)) return false;
        }
        return true;
      }));
  return inner_status;
}

Status Executor::ExecHashJoinRow(const PlanNode& plan, const RowSink& sink) {
  // Build on the right child.
  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> build,
                      CollectRows(*plan.children[1]));
  std::unordered_map<CompositeKey, std::vector<size_t>,
                     rel::CompositeKeyHasher, rel::CompositeKeyEq>
      ht;
  for (size_t i = 0; i < build.size(); ++i) {
    CompositeKey key;
    bool has_null = false;
    for (const ExprPtr& e : plan.right_keys) {
      XQ_ASSIGN_OR_RETURN(Value v, Eval(*e, build[i]));
      if (v.is_null()) {
        has_null = true;
        break;
      }
      key.push_back(std::move(v));
    }
    if (!has_null) ht[std::move(key)].push_back(i);
  }
  Status inner_status;
  XQ_RETURN_IF_ERROR(
      ExecuteRowAtATime(*plan.children[0], [&](const Tuple& left) {
        CompositeKey key;
        for (const ExprPtr& e : plan.left_keys) {
          auto v = Eval(*e, left);
          if (!v.ok()) {
            inner_status = v.status();
            return false;
          }
          if (v->is_null()) return true;  // NULL never joins
          key.push_back(std::move(*v));
        }
        auto it = ht.find(key);
        if (it == ht.end()) return true;
        for (size_t i : it->second) {
          Tuple combined = left;
          combined.insert(combined.end(), build[i].begin(), build[i].end());
          if (!sink(combined)) return false;
        }
        return true;
      }));
  return inner_status;
}

Status Executor::ExecIndexNLJoinRow(const PlanNode& plan,
                                    const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  const rel::IndexEntry& entry = *plan.index;
  const uint64_t epoch = options_.snapshot_epoch;
  Status inner_status;
  XQ_RETURN_IF_ERROR(
      ExecuteRowAtATime(*plan.children[0], [&](const Tuple& outer) {
        CompositeKey key;
        for (const ExprPtr& e : plan.outer_key_exprs) {
          auto v = Eval(*e, outer);
          if (!v.ok()) {
            inner_status = v.status();
            return false;
          }
          if (v->is_null()) return true;
          key.push_back(std::move(*v));
        }
        // Coerce the probe key to the indexed column types so INT probes
        // hit TEXT-typed keys the way the filter comparison would.
        for (size_t i = 0; i < key.size(); ++i) {
          ValueType want = table->schema().column(entry.column_indexes[i]).type;
          if (key[i].type() != want) {
            auto cast = key[i].CastTo(want);
            if (cast.ok()) key[i] = std::move(*cast);
          }
        }
        std::vector<RowId> rows;
        {
          std::shared_lock<std::shared_mutex> idx_lock(entry.latch);
          if (entry.def.kind == rel::IndexKind::kHash) {
            const std::vector<RowId>* found = entry.hash->Lookup(key);
            if (found != nullptr) rows = *found;
          } else if (key.size() == entry.def.columns.size()) {
            rows = entry.btree->Lookup(key);
          } else {
            entry.btree->ScanPrefix(
                key, [&](const CompositeKey&, const std::vector<RowId>& r) {
                  rows.insert(rows.end(), r.begin(), r.end());
                  return true;
                });
          }
        }
        RowVerify verify = MakeEqVerify(entry, key, epoch);
        for (RowId row : rows) {
          auto tuple = table->Get(row, epoch);
          if (!tuple.ok()) {
            if (tuple.status().code() == common::StatusCode::kNotFound) {
              continue;  // invisible at the snapshot epoch
            }
            inner_status = tuple.status();
            return false;
          }
          if (verify && !verify(**tuple)) continue;
          Tuple combined = outer;
          combined.insert(combined.end(), (*tuple)->begin(), (*tuple)->end());
          if (!sink(combined)) return false;
        }
        return true;
      }));
  return inner_status;
}

Status Executor::ExecSortRow(const PlanNode& plan, const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> rows, CollectRows(*plan.children[0]));
  // Precompute sort keys per row.
  std::vector<std::pair<CompositeKey, size_t>> keyed;
  keyed.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    CompositeKey key;
    for (const SortKey& sk : plan.sort_keys) {
      XQ_ASSIGN_OR_RETURN(Value v, Eval(*sk.expr, rows[i]));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&](const auto& a, const auto& b) {
                     for (size_t k = 0; k < plan.sort_keys.size(); ++k) {
                       int c = Value::Compare(a.first[k], b.first[k]);
                       if (c != 0) {
                         return plan.sort_keys[k].desc ? c > 0 : c < 0;
                       }
                     }
                     return false;
                   });
  for (const auto& [key, i] : keyed) {
    if (!sink(rows[i])) return Status::OK();
  }
  return Status::OK();
}

Status Executor::ExecLimitRow(const PlanNode& plan, const RowSink& sink) {
  int64_t skipped = 0;
  int64_t emitted = 0;
  return ExecuteRowAtATime(*plan.children[0], [&](const Tuple& tuple) {
    if (skipped < plan.offset) {
      ++skipped;
      return true;
    }
    if (plan.limit >= 0 && emitted >= plan.limit) return false;
    ++emitted;
    if (!sink(tuple)) return false;
    return plan.limit < 0 || emitted < plan.limit;
  });
}

Status Executor::ExecAggregateRow(const PlanNode& plan, const RowSink& sink) {
  std::unordered_map<CompositeKey, size_t, rel::CompositeKeyHasher,
                     rel::CompositeKeyEq>
      group_index;
  std::vector<CompositeKey> group_keys;  // insertion order
  std::vector<std::vector<AggState>> states;
  Status inner_status;
  XQ_RETURN_IF_ERROR(
      ExecuteRowAtATime(*plan.children[0], [&](const Tuple& tuple) {
        CompositeKey key;
        for (const ExprPtr& g : plan.group_exprs) {
          auto v = Eval(*g, tuple);
          if (!v.ok()) {
            inner_status = v.status();
            return false;
          }
          key.push_back(std::move(*v));
        }
        size_t slot;
        auto it = group_index.find(key);
        if (it == group_index.end()) {
          slot = group_keys.size();
          group_index.emplace(key, slot);
          group_keys.push_back(std::move(key));
          states.emplace_back(plan.aggs.size());
        } else {
          slot = it->second;
        }
        for (size_t a = 0; a < plan.aggs.size(); ++a) {
          Status s = UpdateAgg(plan.aggs[a], tuple, &states[slot][a]);
          if (!s.ok()) {
            inner_status = s;
            return false;
          }
        }
        return true;
      }));
  XQ_RETURN_IF_ERROR(inner_status);
  // Grand aggregate over an empty input still yields one row.
  if (group_keys.empty() && plan.group_exprs.empty()) {
    group_keys.emplace_back();
    states.emplace_back(plan.aggs.size());
  }
  for (size_t g = 0; g < group_keys.size(); ++g) {
    Tuple out = group_keys[g];
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      out.push_back(FinalizeAgg(plan.aggs[a], states[g][a]));
    }
    if (!sink(out)) return Status::OK();
  }
  return Status::OK();
}

Status Executor::ExecDistinctRow(const PlanNode& plan, const RowSink& sink) {
  std::unordered_set<CompositeKey, rel::CompositeKeyHasher,
                     rel::CompositeKeyEq>
      seen;
  return ExecuteRowAtATime(*plan.children[0], [&](const Tuple& tuple) {
    if (!seen.insert(tuple).second) return true;
    return sink(tuple);
  });
}

}  // namespace xomatiq::sql
