#include "sql/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sql/expr_eval.h"

namespace xomatiq::sql {

using common::Result;
using common::Status;
using rel::CompositeKey;
using rel::RowId;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

Status Executor::Execute(const PlanNode& plan, const RowSink& sink) {
  switch (plan.kind) {
    case PlanKind::kSeqScan:
      return ExecScan(plan, sink);
    case PlanKind::kIndexScan:
      return ExecIndexScan(plan, sink);
    case PlanKind::kKeywordScan:
      return ExecKeywordScan(plan, sink);
    case PlanKind::kFilter:
      return ExecFilter(plan, sink);
    case PlanKind::kProject:
      return ExecProject(plan, sink);
    case PlanKind::kNestedLoopJoin:
      return ExecNestedLoopJoin(plan, sink);
    case PlanKind::kHashJoin:
      return ExecHashJoin(plan, sink);
    case PlanKind::kIndexNLJoin:
      return ExecIndexNLJoin(plan, sink);
    case PlanKind::kSort:
      return ExecSort(plan, sink);
    case PlanKind::kLimit:
      return ExecLimit(plan, sink);
    case PlanKind::kAggregate:
      return ExecAggregate(plan, sink);
    case PlanKind::kDistinct:
      return ExecDistinct(plan, sink);
  }
  return Status::Internal("bad plan kind");
}

Result<std::vector<Tuple>> Executor::ExecuteToVector(const PlanNode& plan) {
  std::vector<Tuple> rows;
  XQ_RETURN_IF_ERROR(Execute(plan, [&](const Tuple& t) {
    rows.push_back(t);
    return true;
  }));
  return rows;
}

Status Executor::ExecScan(const PlanNode& plan, const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  table->Scan([&](RowId, const Tuple& tuple) { return sink(tuple); });
  return Status::OK();
}

namespace {

// Emits the live tuples behind `rows` into `sink`; returns false on stop.
Result<bool> EmitRows(const rel::Table& table, const std::vector<RowId>& rows,
                      const Executor::RowSink& sink) {
  for (RowId row : rows) {
    auto tuple = table.Get(row);
    if (!tuple.ok()) return tuple.status();
    if (!sink(**tuple)) return false;
  }
  return true;
}

}  // namespace

Status Executor::ExecIndexScan(const PlanNode& plan, const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  const rel::IndexEntry& entry = *plan.index;
  if (!plan.eq_key.empty()) {
    if (entry.def.kind == rel::IndexKind::kHash) {
      const std::vector<RowId>* rows = entry.hash->Lookup(plan.eq_key);
      if (rows != nullptr) {
        XQ_ASSIGN_OR_RETURN(bool more, EmitRows(*table, *rows, sink));
        (void)more;
      }
      return Status::OK();
    }
    // BTree: exact when the key covers all columns, else prefix scan.
    if (plan.eq_key.size() == entry.def.columns.size()) {
      std::vector<RowId> rows = entry.btree->Lookup(plan.eq_key);
      XQ_ASSIGN_OR_RETURN(bool more, EmitRows(*table, rows, sink));
      (void)more;
      return Status::OK();
    }
    Status status;
    entry.btree->ScanPrefix(
        plan.eq_key, [&](const CompositeKey&, const std::vector<RowId>& rows) {
          auto more = EmitRows(*table, rows, sink);
          if (!more.ok()) {
            status = more.status();
            return false;
          }
          return *more;
        });
    return status;
  }
  // Range scan on the first column of a single-column btree.
  std::optional<rel::BTreeIndex::Bound> lo, hi;
  if (plan.lo.has_value()) {
    lo = rel::BTreeIndex::Bound{{*plan.lo}, plan.lo_inclusive};
  }
  if (plan.hi.has_value()) {
    hi = rel::BTreeIndex::Bound{{*plan.hi}, plan.hi_inclusive};
  }
  Status status;
  entry.btree->Scan(lo, hi,
                    [&](const CompositeKey&, const std::vector<RowId>& rows) {
                      auto more = EmitRows(*table, rows, sink);
                      if (!more.ok()) {
                        status = more.status();
                        return false;
                      }
                      return *more;
                    });
  return status;
}

Status Executor::ExecKeywordScan(const PlanNode& plan, const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  std::vector<RowId> rows = plan.index->inverted->LookupAll(plan.keyword);
  XQ_ASSIGN_OR_RETURN(bool more, EmitRows(*table, rows, sink));
  (void)more;
  return Status::OK();
}

Status Executor::ExecFilter(const PlanNode& plan, const RowSink& sink) {
  Status inner_status;
  XQ_RETURN_IF_ERROR(Execute(*plan.children[0], [&](const Tuple& tuple) {
    auto pass = EvalPredicate(*plan.predicate, tuple);
    if (!pass.ok()) {
      inner_status = pass.status();
      return false;
    }
    if (pass->has_value() && **pass) return sink(tuple);
    return true;
  }));
  return inner_status;
}

Status Executor::ExecProject(const PlanNode& plan, const RowSink& sink) {
  Status inner_status;
  XQ_RETURN_IF_ERROR(Execute(*plan.children[0], [&](const Tuple& tuple) {
    Tuple out;
    out.reserve(plan.project_exprs.size());
    for (const ExprPtr& e : plan.project_exprs) {
      auto v = Eval(*e, tuple);
      if (!v.ok()) {
        inner_status = v.status();
        return false;
      }
      out.push_back(std::move(*v));
    }
    return sink(out);
  }));
  return inner_status;
}

Status Executor::ExecNestedLoopJoin(const PlanNode& plan,
                                    const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> inner,
                      ExecuteToVector(*plan.children[1]));
  Status inner_status;
  XQ_RETURN_IF_ERROR(Execute(*plan.children[0], [&](const Tuple& left) {
    for (const Tuple& right : inner) {
      Tuple combined = left;
      combined.insert(combined.end(), right.begin(), right.end());
      if (plan.predicate) {
        auto pass = EvalPredicate(*plan.predicate, combined);
        if (!pass.ok()) {
          inner_status = pass.status();
          return false;
        }
        if (!pass->has_value() || !**pass) continue;
      }
      if (!sink(combined)) return false;
    }
    return true;
  }));
  return inner_status;
}

Status Executor::ExecHashJoin(const PlanNode& plan, const RowSink& sink) {
  // Build on the right child.
  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> build,
                      ExecuteToVector(*plan.children[1]));
  std::unordered_map<CompositeKey, std::vector<size_t>,
                     rel::CompositeKeyHasher, rel::CompositeKeyEq>
      ht;
  for (size_t i = 0; i < build.size(); ++i) {
    CompositeKey key;
    bool has_null = false;
    for (const ExprPtr& e : plan.right_keys) {
      XQ_ASSIGN_OR_RETURN(Value v, Eval(*e, build[i]));
      if (v.is_null()) {
        has_null = true;
        break;
      }
      key.push_back(std::move(v));
    }
    if (!has_null) ht[std::move(key)].push_back(i);
  }
  Status inner_status;
  XQ_RETURN_IF_ERROR(Execute(*plan.children[0], [&](const Tuple& left) {
    CompositeKey key;
    for (const ExprPtr& e : plan.left_keys) {
      auto v = Eval(*e, left);
      if (!v.ok()) {
        inner_status = v.status();
        return false;
      }
      if (v->is_null()) return true;  // NULL never joins
      key.push_back(std::move(*v));
    }
    auto it = ht.find(key);
    if (it == ht.end()) return true;
    for (size_t i : it->second) {
      Tuple combined = left;
      combined.insert(combined.end(), build[i].begin(), build[i].end());
      if (!sink(combined)) return false;
    }
    return true;
  }));
  return inner_status;
}

Status Executor::ExecIndexNLJoin(const PlanNode& plan, const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(plan.table));
  const rel::IndexEntry& entry = *plan.index;
  Status inner_status;
  XQ_RETURN_IF_ERROR(Execute(*plan.children[0], [&](const Tuple& outer) {
    CompositeKey key;
    for (const ExprPtr& e : plan.outer_key_exprs) {
      auto v = Eval(*e, outer);
      if (!v.ok()) {
        inner_status = v.status();
        return false;
      }
      if (v->is_null()) return true;
      key.push_back(std::move(*v));
    }
    // Coerce the probe key to the indexed column types so INT probes hit
    // TEXT-typed keys the way the filter comparison would.
    for (size_t i = 0; i < key.size(); ++i) {
      ValueType want =
          table->schema().column(entry.column_indexes[i]).type;
      if (key[i].type() != want) {
        auto cast = key[i].CastTo(want);
        if (cast.ok()) key[i] = std::move(*cast);
      }
    }
    std::vector<RowId> rows;
    if (entry.def.kind == rel::IndexKind::kHash) {
      const std::vector<RowId>* found = entry.hash->Lookup(key);
      if (found != nullptr) rows = *found;
    } else if (key.size() == entry.def.columns.size()) {
      rows = entry.btree->Lookup(key);
    } else {
      entry.btree->ScanPrefix(
          key, [&](const CompositeKey&, const std::vector<RowId>& r) {
            rows.insert(rows.end(), r.begin(), r.end());
            return true;
          });
    }
    for (RowId row : rows) {
      auto tuple = table->Get(row);
      if (!tuple.ok()) {
        inner_status = tuple.status();
        return false;
      }
      Tuple combined = outer;
      combined.insert(combined.end(), (*tuple)->begin(), (*tuple)->end());
      if (!sink(combined)) return false;
    }
    return true;
  }));
  return inner_status;
}

Status Executor::ExecSort(const PlanNode& plan, const RowSink& sink) {
  XQ_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                      ExecuteToVector(*plan.children[0]));
  // Precompute sort keys per row.
  std::vector<std::pair<CompositeKey, size_t>> keyed;
  keyed.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    CompositeKey key;
    for (const SortKey& sk : plan.sort_keys) {
      XQ_ASSIGN_OR_RETURN(Value v, Eval(*sk.expr, rows[i]));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&](const auto& a, const auto& b) {
                     for (size_t k = 0; k < plan.sort_keys.size(); ++k) {
                       int c = Value::Compare(a.first[k], b.first[k]);
                       if (c != 0) {
                         return plan.sort_keys[k].desc ? c > 0 : c < 0;
                       }
                     }
                     return false;
                   });
  for (const auto& [key, i] : keyed) {
    if (!sink(rows[i])) return Status::OK();
  }
  return Status::OK();
}

Status Executor::ExecLimit(const PlanNode& plan, const RowSink& sink) {
  int64_t skipped = 0;
  int64_t emitted = 0;
  return Execute(*plan.children[0], [&](const Tuple& tuple) {
    if (skipped < plan.offset) {
      ++skipped;
      return true;
    }
    if (plan.limit >= 0 && emitted >= plan.limit) return false;
    ++emitted;
    if (!sink(tuple)) return false;
    return plan.limit < 0 || emitted < plan.limit;
  });
}

namespace {

struct AggState {
  int64_t count = 0;
  bool has = false;
  bool all_int = true;
  int64_t isum = 0;
  double dsum = 0;
  Value min;
  Value max;
};

Status UpdateAgg(const AggSpec& spec, const Tuple& tuple, AggState* state) {
  if (spec.arg == nullptr) {  // COUNT(*)
    ++state->count;
    return Status::OK();
  }
  XQ_ASSIGN_OR_RETURN(Value v, Eval(*spec.arg, tuple));
  if (v.is_null()) return Status::OK();
  ++state->count;
  switch (spec.func) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      XQ_ASSIGN_OR_RETURN(double d, v.ToNumeric());
      state->dsum += d;
      if (v.type() == ValueType::kInt) {
        state->isum += v.AsInt();
      } else {
        state->all_int = false;
      }
      state->has = true;
      break;
    }
    case AggFunc::kMin:
      if (!state->has || Value::Compare(v, state->min) < 0) state->min = v;
      state->has = true;
      break;
    case AggFunc::kMax:
      if (!state->has || Value::Compare(v, state->max) > 0) state->max = v;
      state->has = true;
      break;
  }
  return Status::OK();
}

Value FinalizeAgg(const AggSpec& spec, const AggState& state) {
  switch (spec.func) {
    case AggFunc::kCount:
      return Value::Int(state.count);
    case AggFunc::kSum:
      if (!state.has) return Value::Null();
      return state.all_int ? Value::Int(state.isum)
                           : Value::Double(state.dsum);
    case AggFunc::kAvg:
      if (!state.has) return Value::Null();
      return Value::Double(state.dsum / static_cast<double>(state.count));
    case AggFunc::kMin:
      return state.has ? state.min : Value::Null();
    case AggFunc::kMax:
      return state.has ? state.max : Value::Null();
  }
  return Value::Null();
}

}  // namespace

Status Executor::ExecAggregate(const PlanNode& plan, const RowSink& sink) {
  std::unordered_map<CompositeKey, size_t, rel::CompositeKeyHasher,
                     rel::CompositeKeyEq>
      group_index;
  std::vector<CompositeKey> group_keys;          // insertion order
  std::vector<std::vector<AggState>> states;
  Status inner_status;
  XQ_RETURN_IF_ERROR(Execute(*plan.children[0], [&](const Tuple& tuple) {
    CompositeKey key;
    for (const ExprPtr& g : plan.group_exprs) {
      auto v = Eval(*g, tuple);
      if (!v.ok()) {
        inner_status = v.status();
        return false;
      }
      key.push_back(std::move(*v));
    }
    size_t slot;
    auto it = group_index.find(key);
    if (it == group_index.end()) {
      slot = group_keys.size();
      group_index.emplace(key, slot);
      group_keys.push_back(std::move(key));
      states.emplace_back(plan.aggs.size());
    } else {
      slot = it->second;
    }
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      Status s = UpdateAgg(plan.aggs[a], tuple, &states[slot][a]);
      if (!s.ok()) {
        inner_status = s;
        return false;
      }
    }
    return true;
  }));
  XQ_RETURN_IF_ERROR(inner_status);
  // Grand aggregate over an empty input still yields one row.
  if (group_keys.empty() && plan.group_exprs.empty()) {
    group_keys.emplace_back();
    states.emplace_back(plan.aggs.size());
  }
  for (size_t g = 0; g < group_keys.size(); ++g) {
    Tuple out = group_keys[g];
    for (size_t a = 0; a < plan.aggs.size(); ++a) {
      out.push_back(FinalizeAgg(plan.aggs[a], states[g][a]));
    }
    if (!sink(out)) return Status::OK();
  }
  return Status::OK();
}

Status Executor::ExecDistinct(const PlanNode& plan, const RowSink& sink) {
  std::unordered_set<CompositeKey, rel::CompositeKeyHasher,
                     rel::CompositeKeyEq>
      seen;
  return Execute(*plan.children[0], [&](const Tuple& tuple) {
    if (!seen.insert(tuple).second) return true;
    return sink(tuple);
  });
}

}  // namespace xomatiq::sql
