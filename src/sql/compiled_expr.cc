#include "sql/compiled_expr.h"

#include <cctype>

#include "common/string_util.h"
#include "sql/expr_eval.h"

namespace xomatiq::sql {

using common::Result;
using common::Status;
using rel::Value;
using rel::ValueType;

namespace {

Value BoolValue(bool b) { return Value::Int(b ? 1 : 0); }

// Shared results for boolean-producing ops, so probes and combines can
// push a borrowed pointer instead of materializing a Value per row.
const Value& SharedBool(bool b) {
  static const Value kTrue = Value::Int(1);
  static const Value kFalse = Value::Int(0);
  return b ? kTrue : kFalse;
}

const Value& SharedNull() {
  static const Value kNull = Value::Null();
  return kNull;
}

// Text view without materializing a std::string when the value already is
// text; falls back to formatting into `buf` (matches Value::ToString()).
std::string_view TextView(const Value& v, std::string* buf) {
  if (v.type() == ValueType::kText) return v.AsText();
  *buf = v.ToString();
  return *buf;
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// Three-valued AND/OR over already-evaluated operands; mirrors the
// non-short-circuit tail of the tree walker.
Value Combine3VL(bool is_and, const Value& lv, const Value& rv) {
  std::optional<bool> l = Truthiness(lv);
  std::optional<bool> r = Truthiness(rv);
  if (is_and) {
    if (r.has_value() && !*r) return BoolValue(false);
    if (l.has_value() && !*l) return BoolValue(false);
    if (l.has_value() && r.has_value()) return BoolValue(*l && *r);
    return Value::Null();
  }
  if (r.has_value() && *r) return BoolValue(true);
  if (l.has_value() && *l) return BoolValue(true);
  if (l.has_value() && r.has_value()) return BoolValue(*l || *r);
  return Value::Null();
}

}  // namespace

Status CompiledExpr::Emit(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      ExprOp op;
      op.code = ExprOp::Code::kPushConst;
      op.constant = e.value;
      ops_.push_back(std::move(op));
      return Status::OK();
    }
    case ExprKind::kColumnRef: {
      if (e.bound_index < 0) {
        return Status::Internal("compiling unbound column " + e.column_name);
      }
      ExprOp op;
      op.code = ExprOp::Code::kPushSlot;
      op.slot = e.bound_index;
      ops_.push_back(std::move(op));
      return Status::OK();
    }
    case ExprKind::kBinary: {
      if (e.bin_op == BinaryOp::kAnd || e.bin_op == BinaryOp::kOr) {
        bool is_and = e.bin_op == BinaryOp::kAnd;
        XQ_RETURN_IF_ERROR(Emit(*e.left));
        size_t probe = ops_.size();
        ExprOp op;
        op.code = is_and ? ExprOp::Code::kAndProbe : ExprOp::Code::kOrProbe;
        ops_.push_back(std::move(op));
        XQ_RETURN_IF_ERROR(Emit(*e.right));
        ExprOp combine;
        combine.code =
            is_and ? ExprOp::Code::kAndCombine : ExprOp::Code::kOrCombine;
        ops_.push_back(std::move(combine));
        ops_[probe].jump = ops_.size();
        return Status::OK();
      }
      XQ_RETURN_IF_ERROR(Emit(*e.left));
      XQ_RETURN_IF_ERROR(Emit(*e.right));
      ExprOp op;
      op.code = ExprOp::Code::kBinary;
      op.bin_op = e.bin_op;
      ops_.push_back(std::move(op));
      return Status::OK();
    }
    case ExprKind::kUnary: {
      XQ_RETURN_IF_ERROR(Emit(*e.left));
      ExprOp op;
      op.code = e.un_op == UnaryOp::kNot ? ExprOp::Code::kNot
                                         : ExprOp::Code::kNeg;
      ops_.push_back(std::move(op));
      return Status::OK();
    }
    case ExprKind::kIsNull: {
      XQ_RETURN_IF_ERROR(Emit(*e.left));
      ExprOp op;
      op.code = ExprOp::Code::kIsNull;
      op.negated = e.negated;
      ops_.push_back(std::move(op));
      return Status::OK();
    }
    case ExprKind::kLike:
    case ExprKind::kContains: {
      XQ_RETURN_IF_ERROR(Emit(*e.left));
      XQ_RETURN_IF_ERROR(Emit(*e.right));
      ExprOp op;
      op.code = e.kind == ExprKind::kLike ? ExprOp::Code::kLike
                                          : ExprOp::Code::kContains;
      op.negated = e.negated;
      ops_.push_back(std::move(op));
      return Status::OK();
    }
    case ExprKind::kBetween: {
      XQ_RETURN_IF_ERROR(Emit(*e.left));
      XQ_RETURN_IF_ERROR(Emit(*e.right));
      XQ_RETURN_IF_ERROR(Emit(*e.extra));
      ExprOp op;
      op.code = ExprOp::Code::kBetween;
      op.negated = e.negated;
      ops_.push_back(std::move(op));
      return Status::OK();
    }
    case ExprKind::kInList: {
      XQ_RETURN_IF_ERROR(Emit(*e.left));
      for (const ExprPtr& item : e.list) {
        XQ_RETURN_IF_ERROR(Emit(*item));
      }
      ExprOp op;
      op.code = ExprOp::Code::kInList;
      op.negated = e.negated;
      op.arity = e.list.size();
      ops_.push_back(std::move(op));
      return Status::OK();
    }
    case ExprKind::kFunc: {
      XQ_RETURN_IF_ERROR(Emit(*e.left));
      ExprOp op;
      op.code = ExprOp::Code::kFunc;
      op.func = e.func;
      ops_.push_back(std::move(op));
      return Status::OK();
    }
    case ExprKind::kAggregate:
      return Status::Internal("aggregate in compiled expression: " +
                              e.ToString());
    case ExprKind::kStar:
      return Status::Internal("bare * in compiled expression");
  }
  return Status::Internal("bad expr kind");
}

Result<CompiledExpr> CompiledExpr::Compile(const Expr& e) {
  CompiledExpr prog;
  XQ_RETURN_IF_ERROR(prog.Emit(e));
  return prog;
}

Result<const Value*> CompiledExpr::EvalRowRef(const rel::Tuple& row,
                                              EvalScratch* scratch) const {
  return EvalRef(row, nullptr, scratch);
}

Result<const Value*> CompiledExpr::EvalPairRef(const rel::Tuple& left,
                                               const rel::Tuple& right,
                                               EvalScratch* scratch) const {
  return EvalRef(left, &right, scratch);
}

// `right`, when set, extends the slot space: slots [0, left.size()) read
// from `left` and the rest from `right`, exactly as if the two tuples had
// been concatenated. Joins use this to evaluate pair predicates without
// materializing the combined row.
Result<const Value*> CompiledExpr::EvalRef(const rel::Tuple& left,
                                           const rel::Tuple* right,
                                           EvalScratch* scratch) const {
  std::vector<const Value*>& stack = scratch->stack;
  std::vector<Value>& owned = scratch->owned;
  stack.clear();
  owned.clear();
  // Each op appends at most one temporary, so this bound keeps `owned`
  // from reallocating (which would dangle the borrowed stack pointers).
  owned.reserve(ops_.size());
  auto push_owned = [&](Value v) {
    owned.push_back(std::move(v));
    stack.push_back(&owned.back());
  };
  for (size_t ip = 0; ip < ops_.size();) {
    const ExprOp& op = ops_[ip];
    switch (op.code) {
      case ExprOp::Code::kPushConst:
        stack.push_back(&op.constant);
        break;
      case ExprOp::Code::kPushSlot: {
        size_t slot = static_cast<size_t>(op.slot);
        if (slot < left.size()) {
          stack.push_back(&left[slot]);
        } else if (right != nullptr && slot - left.size() < right->size()) {
          stack.push_back(&(*right)[slot - left.size()]);
        } else {
          return Status::Internal("slot " + std::to_string(slot) +
                                  " out of range for tuple arity " +
                                  std::to_string(left.size() +
                                                 (right ? right->size() : 0)));
        }
        break;
      }
      case ExprOp::Code::kBinary: {
        const Value* r = stack.back();
        stack.pop_back();
        const Value* l = stack.back();
        // Comparisons dominate compiled filters; settle them into a shared
        // singleton in place (same semantics as EvalComparison: NULL
        // operand -> NULL, otherwise Value::Compare ordering) so no
        // temporary Value is materialized per row.
        if (IsComparisonOp(op.bin_op)) {
          if (l->is_null() || r->is_null()) {
            stack.back() = &SharedNull();
            break;
          }
          int c;
          if (l->type() == ValueType::kInt && r->type() == ValueType::kInt) {
            int64_t x = l->AsInt(), y = r->AsInt();
            c = x < y ? -1 : (x > y ? 1 : 0);
          } else {
            c = Value::Compare(*l, *r);
          }
          bool res = false;
          switch (op.bin_op) {
            case BinaryOp::kEq: res = c == 0; break;
            case BinaryOp::kNe: res = c != 0; break;
            case BinaryOp::kLt: res = c < 0; break;
            case BinaryOp::kLe: res = c <= 0; break;
            case BinaryOp::kGt: res = c > 0; break;
            default: res = c >= 0; break;  // kGe
          }
          stack.back() = &SharedBool(res);
          break;
        }
        stack.pop_back();
        XQ_ASSIGN_OR_RETURN(Value v, EvalBinaryScalar(op.bin_op, *l, *r));
        push_owned(std::move(v));
        break;
      }
      case ExprOp::Code::kAndProbe: {
        std::optional<bool> t = Truthiness(*stack.back());
        if (t.has_value() && !*t) {
          stack.back() = &SharedBool(false);
          ip = op.jump;
          continue;
        }
        break;
      }
      case ExprOp::Code::kOrProbe: {
        std::optional<bool> t = Truthiness(*stack.back());
        if (t.has_value() && *t) {
          stack.back() = &SharedBool(true);
          ip = op.jump;
          continue;
        }
        break;
      }
      case ExprOp::Code::kAndCombine:
      case ExprOp::Code::kOrCombine: {
        const Value* r = stack.back();
        stack.pop_back();
        const Value* l = stack.back();
        stack.pop_back();
        push_owned(
            Combine3VL(op.code == ExprOp::Code::kAndCombine, *l, *r));
        break;
      }
      case ExprOp::Code::kNot: {
        std::optional<bool> t = Truthiness(*stack.back());
        stack.back() = t.has_value() ? &SharedBool(!*t) : &SharedNull();
        break;
      }
      case ExprOp::Code::kNeg: {
        const Value* v = stack.back();
        stack.pop_back();
        if (v->is_null()) {
          stack.push_back(&SharedNull());
        } else if (v->type() == ValueType::kInt) {
          push_owned(Value::Int(-v->AsInt()));
        } else {
          XQ_ASSIGN_OR_RETURN(double d, v->ToNumeric());
          push_owned(Value::Double(-d));
        }
        break;
      }
      case ExprOp::Code::kIsNull: {
        bool null = stack.back()->is_null();
        stack.back() = &SharedBool(null != op.negated);
        break;
      }
      case ExprOp::Code::kLike:
      case ExprOp::Code::kContains: {
        const Value* pattern = stack.back();
        stack.pop_back();
        const Value* text = stack.back();
        stack.pop_back();
        if (text->is_null() || pattern->is_null()) {
          stack.push_back(&SharedNull());
          break;
        }
        std::string text_buf, pattern_buf;
        std::string_view t = TextView(*text, &text_buf);
        std::string_view p = TextView(*pattern, &pattern_buf);
        bool m = op.code == ExprOp::Code::kLike ? MatchLike(t, p)
                                                : MatchContains(t, p);
        stack.push_back(&SharedBool(m != op.negated));
        break;
      }
      case ExprOp::Code::kBetween: {
        const Value* hi = stack.back();
        stack.pop_back();
        const Value* lo = stack.back();
        stack.pop_back();
        const Value* v = stack.back();
        stack.pop_back();
        if (v->is_null() || lo->is_null() || hi->is_null()) {
          stack.push_back(&SharedNull());
          break;
        }
        bool in =
            Value::Compare(*v, *lo) >= 0 && Value::Compare(*v, *hi) <= 0;
        stack.push_back(&SharedBool(in != op.negated));
        break;
      }
      case ExprOp::Code::kInList: {
        size_t base = stack.size() - op.arity;
        const Value& needle = *stack[base - 1];
        const Value* out;
        if (needle.is_null()) {
          out = &SharedNull();
        } else {
          bool matched = false;
          bool saw_null = false;
          for (size_t i = 0; i < op.arity; ++i) {
            const Value& item = *stack[base + i];
            if (item.is_null()) {
              saw_null = true;
            } else if (Value::Compare(needle, item) == 0) {
              matched = true;
              break;
            }
          }
          if (matched) {
            out = &SharedBool(!op.negated);
          } else if (saw_null) {
            out = &SharedNull();
          } else {
            out = &SharedBool(op.negated);
          }
        }
        stack.resize(base - 1);
        stack.push_back(out);
        break;
      }
      case ExprOp::Code::kFunc: {
        const Value* v = stack.back();
        stack.pop_back();
        if (v->is_null()) {
          stack.push_back(&SharedNull());
          break;
        }
        switch (op.func) {
          case ScalarFunc::kLower:
            push_owned(Value::Text(common::AsciiToLower(v->ToString())));
            break;
          case ScalarFunc::kUpper: {
            std::string s = v->ToString();
            for (char& c : s) {
              c = static_cast<char>(
                  std::toupper(static_cast<unsigned char>(c)));
            }
            push_owned(Value::Text(std::move(s)));
            break;
          }
          case ScalarFunc::kLength:
            push_owned(
                Value::Int(static_cast<int64_t>(v->ToString().size())));
            break;
        }
        break;
      }
    }
    ++ip;
  }
  if (stack.size() != 1) {
    return Status::Internal("expression program left " +
                            std::to_string(stack.size()) + " stack values");
  }
  return stack.back();
}

Result<Value> CompiledExpr::EvalRow(const rel::Tuple& row,
                                    EvalScratch* scratch) const {
  XQ_ASSIGN_OR_RETURN(const Value* v, EvalRowRef(row, scratch));
  return *v;
}

Status CompiledExpr::FilterBatch(rel::RowBatch* batch,
                                 EvalScratch* scratch) const {
  std::vector<uint32_t> next;
  next.reserve(batch->size());
  const std::vector<uint32_t>& sel = batch->sel();
  for (size_t i = 0; i < sel.size(); ++i) {
    XQ_ASSIGN_OR_RETURN(const Value* v, EvalRowRef(batch->row(i), scratch));
    std::optional<bool> t = Truthiness(*v);
    if (t.has_value() && *t) next.push_back(sel[i]);
  }
  batch->SetSel(std::move(next));
  return Status::OK();
}

}  // namespace xomatiq::sql
