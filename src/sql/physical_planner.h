#ifndef XOMATIQ_SQL_PHYSICAL_PLANNER_H_
#define XOMATIQ_SQL_PHYSICAL_PLANNER_H_

#include "common/result.h"
#include "relational/database.h"
#include "sql/logical_plan.h"
#include "sql/plan.h"
#include "sql/planner.h"
#include "sql/stats.h"

namespace xomatiq::sql {

// Lowers a rewritten logical plan to a costed physical plan:
//
//   - per-relation access paths (SeqScan / ParallelSeqScan / IndexScan /
//     KeywordScan) priced against the pushed single-table predicates;
//   - left-deep join-order search — exact dynamic programming over
//     relation subsets up to PlannerOptions::dp_join_limit relations,
//     greedy cheapest-extension beyond — choosing hash join,
//     index-nested-loop or nested-loop per step;
//   - every physical node annotated with est_rows/est_cost (rendered by
//     EXPLAIN next to the ANALYZE actuals).
//
// Requires statistics (rel::Database::StatsFor) for every base table and
// returns an error otherwise; the Planner catches that in kAuto mode and
// falls back to the rule-based pipeline.
class CostBasedPlanner {
 public:
  CostBasedPlanner(rel::Database* db, const PlannerOptions& options)
      : db_(db), options_(options) {}

  common::Result<PlanPtr> Lower(const LogicalOp& root);

  // True when the chosen join order differs from FROM order (feeds the
  // sql.opt.join_reorders counter).
  bool reordered() const { return reordered_; }

 private:
  struct RelInfo;
  struct JoinConjunct;
  struct JoinStep;

  common::Result<PlanPtr> LowerJoin(const LogicalOp& join);
  common::Result<PlanPtr> BuildAccessPlan(const LogicalOp& get, RelInfo* rel);
  void ChooseAccess(const CostModel& cm, const std::string& table_name,
                    RelInfo* rel);

  rel::Database* db_;
  const PlannerOptions& options_;
  bool reordered_ = false;
};

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_PHYSICAL_PLANNER_H_
