#ifndef XOMATIQ_SQL_AST_H_
#define XOMATIQ_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/value.h"

namespace xomatiq::sql {

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv, kMod,
  kConcat,
};

enum class UnaryOp { kNot, kNeg };

enum class ScalarFunc { kLower, kUpper, kLength };

enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,    // value
  kColumnRef,  // name (optionally qualified); bound_index set by the binder
  kBinary,     // op, left, right
  kUnary,      // uop, left
  kIsNull,     // left; negated => IS NOT NULL
  kLike,       // left LIKE pattern (literal in right)
  kContains,   // CONTAINS(left, 'keywords'): token-AND keyword match
  kBetween,    // left BETWEEN low AND high
  kInList,     // left IN (list)
  kFunc,       // scalar func(left)
  kAggregate,  // agg(left); left null for COUNT(*)
  kStar,       // bare * inside COUNT(*)
};

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  rel::Value value;

  // kColumnRef
  std::string column_name;
  int bound_index = -1;  // set by Bind(); -1 = unresolved

  // Operators / functions.
  BinaryOp bin_op = BinaryOp::kEq;
  UnaryOp un_op = UnaryOp::kNot;
  ScalarFunc func = ScalarFunc::kLower;
  AggFunc agg = AggFunc::kCount;
  bool negated = false;  // IS NOT NULL / NOT LIKE / NOT IN / NOT BETWEEN

  ExprPtr left;
  ExprPtr right;
  ExprPtr extra;              // BETWEEN high bound
  std::vector<ExprPtr> list;  // IN list

  // Deep copy (plans keep private copies of parsed expressions).
  ExprPtr Clone() const;

  // Rendering for EXPLAIN and error messages.
  std::string ToString() const;
};

ExprPtr MakeLiteral(rel::Value v);
ExprPtr MakeColumnRef(std::string name);
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

struct ColumnDefAst {
  std::string name;
  rel::ValueType type = rel::ValueType::kText;
  bool not_null = false;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDefAst> columns;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
  rel::IndexKind kind = rel::IndexKind::kBTree;
  bool unique = false;
};

struct DropStmt {
  bool is_table = true;  // else index
  std::string name;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;        // empty = positional
  std::vector<std::vector<ExprPtr>> rows;  // literal expressions
};

struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name
};

struct JoinClause {
  TableRef table;
  ExprPtr on;  // may be null (cross join)
};

struct SelectItem {
  ExprPtr expr;       // null when is_star
  std::string alias;  // empty = derived
  bool is_star = false;
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;     // comma-separated relations
  std::vector<JoinClause> joins;  // explicit JOIN ... ON ...
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

// ANALYZE [table]: collect optimizer statistics (empty = all tables).
struct AnalyzeStmt {
  std::string table;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> sets;
  ExprPtr where;
};

enum class StatementKind {
  kCreateTable,
  kCreateIndex,
  kDrop,
  kInsert,
  kSelect,
  kDelete,
  kUpdate,
  kExplain,     // EXPLAIN [ANALYZE] <select>
  kStats,       // STATS: dump the process metrics snapshot
  kResetStats,  // RESET STATS: zero counters/gauges/histograms
  kSlowQueries,  // SLOW QUERIES: dump the slow-query log
  kAnalyze,     // ANALYZE [table]: collect optimizer statistics
  kWalStatus,   // WAL STATUS: durability state and LSN positions
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;
  CreateTableStmt create_table;
  CreateIndexStmt create_index;
  DropStmt drop;
  InsertStmt insert;
  SelectStmt select;  // also the target of kExplain
  DeleteStmt del;
  UpdateStmt update;
  AnalyzeStmt analyze_stmt;
  // kExplain: EXPLAIN ANALYZE — execute the query and annotate the plan
  // tree with per-operator actuals instead of printing the bare plan.
  bool analyze = false;
};

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_AST_H_
