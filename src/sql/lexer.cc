#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace xomatiq::sql {

using common::Result;
using common::Status;

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",    "AND",    "OR",     "NOT",     "JOIN",
      "INNER",  "LEFT",   "ON",       "INSERT", "INTO",   "VALUES",  "CREATE",
      "TABLE",  "INDEX",  "UNIQUE",   "USING",  "DELETE", "UPDATE",  "SET",
      "ORDER",  "BY",     "ASC",      "DESC",   "LIMIT",  "OFFSET",  "GROUP",
      "HAVING", "AS",     "DISTINCT", "NULL",   "LIKE",   "CONTAINS","IS",
      "IN",     "BETWEEN","INT",      "INTEGER","DOUBLE", "REAL",    "TEXT",
      "VARCHAR","PRIMARY","KEY",      "COUNT",  "MIN",    "MAX",     "SUM",
      "AVG",    "EXPLAIN","BTREE",    "HASH",   "INVERTED","DROP",   "TRUE",
      "FALSE",  "CAST",   "LOWER",    "UPPER",  "LENGTH", "ANALYZE",
      "STATS",  "RESET",   "SLOW",    "QUERIES", "WAL",    "STATUS",
  };
  return *kKeywords;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (Keywords().count(upper) > 0) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = std::move(word);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_real = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string num(sql.substr(start, i - start));
      if (is_real) {
        auto v = common::ParseDouble(num);
        if (!v) return Status::ParseError("bad number literal: " + num);
        tok.type = TokenType::kNumber;
        tok.double_value = *v;
      } else {
        auto v = common::ParseInt64(num);
        if (!v) return Status::ParseError("bad integer literal: " + num);
        tok.type = TokenType::kInteger;
        tok.int_value = *v;
      }
      tok.text = std::move(num);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kIdentifier;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char symbols first.
    auto two = sql.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "!=" || two == "<>" ||
        two == "||") {
      tok.type = TokenType::kSymbol;
      tok.text = two == "<>" ? "!=" : std::string(two);
      tokens.push_back(std::move(tok));
      i += 2;
      continue;
    }
    static constexpr std::string_view kSingles = "()*,.;=<>+-/%";
    if (kSingles.find(c) != std::string_view::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      tokens.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.offset = n;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace xomatiq::sql
