#ifndef XOMATIQ_XML_WRITER_H_
#define XOMATIQ_XML_WRITER_H_

#include <string>

#include "xml/dom.h"

namespace xomatiq::xml {

struct WriteOptions {
  bool pretty = true;         // newline + indent per nesting level
  int indent_width = 2;
  bool declaration = true;    // emit <?xml version="1.0" encoding="UTF-8"?>
};

// Serializes a document / subtree to XML text. Text content and attribute
// values are entity-escaped, so Parse(Write(doc)) round-trips.
std::string WriteXml(const XmlDocument& doc, const WriteOptions& options = {});
std::string WriteXml(const XmlNode& node, const WriteOptions& options = {});

// Escapes &, <, > (and quotes when `for_attribute`).
std::string EscapeText(std::string_view text, bool for_attribute = false);

}  // namespace xomatiq::xml

#endif  // XOMATIQ_XML_WRITER_H_
