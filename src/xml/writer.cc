#include "xml/writer.h"

namespace xomatiq::xml {

std::string EscapeText(std::string_view text, bool for_attribute) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += for_attribute ? "&quot;" : "\"";
        break;
      case '\'':
        out += for_attribute ? "&apos;" : "'";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

// True when the element's children are text-only (rendered inline).
bool IsTextOnly(const XmlNode& node) {
  for (const auto& child : node.children()) {
    if (child->kind() != NodeKind::kText) return false;
  }
  return true;
}

void WriteNode(const XmlNode& node, const WriteOptions& options, int depth,
               std::string* out) {
  std::string pad =
      options.pretty
          ? std::string(static_cast<size_t>(depth * options.indent_width), ' ')
          : std::string();
  switch (node.kind()) {
    case NodeKind::kDocument:
      for (const auto& child : node.children()) {
        WriteNode(*child, options, depth, out);
      }
      return;
    case NodeKind::kText:
      *out += EscapeText(node.value());
      return;
    case NodeKind::kComment:
      *out += pad + "<!--" + node.value() + "-->";
      if (options.pretty) *out += "\n";
      return;
    case NodeKind::kProcessingInstruction:
      *out += pad + "<?" + node.name();
      if (!node.value().empty()) *out += " " + node.value();
      *out += "?>";
      if (options.pretty) *out += "\n";
      return;
    case NodeKind::kElement:
      break;
  }
  *out += pad + "<" + node.name();
  for (const XmlAttribute& attr : node.attributes()) {
    *out += " " + attr.name + "=\"" + EscapeText(attr.value, true) + "\"";
  }
  if (node.children().empty()) {
    *out += "/>";
    if (options.pretty) *out += "\n";
    return;
  }
  *out += ">";
  if (IsTextOnly(node)) {
    *out += EscapeText(node.Text());
    *out += "</" + node.name() + ">";
    if (options.pretty) *out += "\n";
    return;
  }
  if (options.pretty) *out += "\n";
  for (const auto& child : node.children()) {
    if (child->kind() == NodeKind::kText) {
      // Mixed content: keep text inline on its own padded line.
      if (options.pretty) {
        *out += pad + std::string(static_cast<size_t>(options.indent_width),
                                  ' ') +
                EscapeText(child->value()) + "\n";
      } else {
        *out += EscapeText(child->value());
      }
      continue;
    }
    WriteNode(*child, options, depth + 1, out);
  }
  *out += pad + "</" + node.name() + ">";
  if (options.pretty) *out += "\n";
}

}  // namespace

std::string WriteXml(const XmlNode& node, const WriteOptions& options) {
  std::string out;
  WriteNode(node, options, 0, &out);
  return out;
}

std::string WriteXml(const XmlDocument& doc, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.pretty) out += "\n";
  }
  WriteNode(doc.document_node(), options, 0, &out);
  return out;
}

}  // namespace xomatiq::xml
