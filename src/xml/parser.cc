#include "xml/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace xomatiq::xml {

using common::Result;
using common::Status;

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

// Cursor-based recursive-descent XML parser.
class XmlParser {
 public:
  XmlParser(std::string_view input, const ParseOptions& options)
      : in_(input), options_(options) {}

  Result<XmlDocument> Parse();

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool LookingAt(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  Result<std::string> ParseName();
  Result<std::string> ParseAttrValue();
  Status ParseAttributes(XmlNode* element);
  Status SkipProlog(XmlDocument* doc);
  Result<std::unique_ptr<XmlNode>> ParseElement();
  Status ParseContent(XmlNode* element);
  Status SkipComment();
  Result<std::unique_ptr<XmlNode>> ParsePi();

  // Bounds recursion so hostile inputs cannot exhaust the stack.
  static constexpr size_t kMaxDepth = 512;

  std::string_view in_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

Result<std::string> XmlParser::ParseName() {
  if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
  size_t start = pos_;
  ++pos_;
  while (!AtEnd() && IsNameChar(Peek())) ++pos_;
  return std::string(in_.substr(start, pos_ - start));
}

Result<std::string> XmlParser::ParseAttrValue() {
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return Error("expected a quoted attribute value");
  }
  char quote = Peek();
  ++pos_;
  size_t start = pos_;
  while (!AtEnd() && Peek() != quote) {
    if (Peek() == '<') return Error("'<' in attribute value");
    ++pos_;
  }
  if (AtEnd()) return Error("unterminated attribute value");
  std::string raw(in_.substr(start, pos_ - start));
  ++pos_;  // closing quote
  return DecodeEntities(raw);
}

Status XmlParser::ParseAttributes(XmlNode* element) {
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated start tag");
    if (Peek() == '>' || LookingAt("/>")) return Status::OK();
    XQ_ASSIGN_OR_RETURN(std::string name, ParseName());
    SkipWhitespace();
    if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute");
    ++pos_;
    SkipWhitespace();
    XQ_ASSIGN_OR_RETURN(std::string value, ParseAttrValue());
    if (element->FindAttribute(name) != nullptr) {
      return Error("duplicate attribute '" + name + "'");
    }
    element->AddAttribute(std::move(name), std::move(value));
  }
}

Status XmlParser::SkipComment() {
  // pos_ at "<!--".
  pos_ += 4;
  size_t end = in_.find("-->", pos_);
  if (end == std::string_view::npos) return Error("unterminated comment");
  pos_ = end + 3;
  return Status::OK();
}

Result<std::unique_ptr<XmlNode>> XmlParser::ParsePi() {
  // pos_ at "<?".
  pos_ += 2;
  XQ_ASSIGN_OR_RETURN(std::string target, ParseName());
  size_t end = in_.find("?>", pos_);
  if (end == std::string_view::npos) {
    return Error("unterminated processing instruction");
  }
  std::string payload(
      common::StripWhitespace(in_.substr(pos_, end - pos_)));
  pos_ = end + 2;
  auto node =
      std::make_unique<XmlNode>(NodeKind::kProcessingInstruction, target);
  node->set_value(std::move(payload));
  return node;
}

Status XmlParser::SkipProlog(XmlDocument* doc) {
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return Error("document has no root element");
    if (LookingAt("<?")) {
      XQ_ASSIGN_OR_RETURN(auto pi, ParsePi());
      (void)pi;  // declaration and prolog PIs are not retained
      continue;
    }
    if (LookingAt("<!--")) {
      XQ_RETURN_IF_ERROR(SkipComment());
      continue;
    }
    if (LookingAt("<!DOCTYPE")) {
      pos_ += 9;
      SkipWhitespace();
      XQ_ASSIGN_OR_RETURN(std::string name, ParseName());
      doc->set_doctype_name(name);
      // Skip to the matching '>' accounting for an internal subset.
      int bracket_depth = 0;
      while (!AtEnd()) {
        char c = Peek();
        if (c == '[') ++bracket_depth;
        if (c == ']') --bracket_depth;
        if (c == '>' && bracket_depth == 0) {
          ++pos_;
          break;
        }
        ++pos_;
      }
      continue;
    }
    return Status::OK();
  }
}

Result<std::unique_ptr<XmlNode>> XmlParser::ParseElement() {
  // pos_ at '<'.
  if (depth_ >= kMaxDepth) {
    return Error("element nesting exceeds the depth limit (" +
                 std::to_string(kMaxDepth) + ")");
  }
  ++depth_;
  ++pos_;
  XQ_ASSIGN_OR_RETURN(std::string name, ParseName());
  auto element = std::make_unique<XmlNode>(NodeKind::kElement, name);
  XQ_RETURN_IF_ERROR(ParseAttributes(element.get()));
  if (LookingAt("/>")) {
    pos_ += 2;
    --depth_;
    return element;
  }
  if (AtEnd() || Peek() != '>') return Error("expected '>'");
  ++pos_;
  XQ_RETURN_IF_ERROR(ParseContent(element.get()));
  // pos_ at "</".
  pos_ += 2;
  XQ_ASSIGN_OR_RETURN(std::string close, ParseName());
  if (close != name) {
    return Error("mismatched end tag </" + close + "> for <" + name + ">");
  }
  SkipWhitespace();
  if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
  ++pos_;
  --depth_;
  return element;
}

Status XmlParser::ParseContent(XmlNode* element) {
  std::string text;
  auto flush_text = [&] {
    if (text.empty()) return;
    if (options_.strip_whitespace_text &&
        common::StripWhitespace(text).empty()) {
      text.clear();
      return;
    }
    element->AddText(std::move(text));
    text = std::string();
  };
  while (true) {
    if (AtEnd()) return Error("unterminated element <" + element->name() + ">");
    if (LookingAt("</")) {
      flush_text();
      return Status::OK();
    }
    if (LookingAt("<![CDATA[")) {
      pos_ += 9;
      size_t end = in_.find("]]>", pos_);
      if (end == std::string_view::npos) return Error("unterminated CDATA");
      text.append(in_.substr(pos_, end - pos_));
      pos_ = end + 3;
      continue;
    }
    if (LookingAt("<!--")) {
      flush_text();
      if (options_.keep_comments) {
        size_t start = pos_ + 4;
        size_t end = in_.find("-->", start);
        if (end == std::string_view::npos) return Error("unterminated comment");
        auto comment = std::make_unique<XmlNode>(NodeKind::kComment);
        comment->set_value(std::string(in_.substr(start, end - start)));
        element->AppendChild(std::move(comment));
        pos_ = end + 3;
      } else {
        XQ_RETURN_IF_ERROR(SkipComment());
      }
      continue;
    }
    if (LookingAt("<?")) {
      flush_text();
      XQ_ASSIGN_OR_RETURN(auto pi, ParsePi());
      if (options_.keep_processing_instructions) {
        element->AppendChild(std::move(pi));
      }
      continue;
    }
    if (Peek() == '<') {
      flush_text();
      XQ_ASSIGN_OR_RETURN(auto child, ParseElement());
      element->AppendChild(std::move(child));
      continue;
    }
    // Character data up to the next markup.
    size_t next = in_.find_first_of("<&", pos_);
    if (next == std::string_view::npos) {
      return Error("unterminated element <" + element->name() + ">");
    }
    if (next > pos_) {
      text.append(in_.substr(pos_, next - pos_));
      pos_ = next;
      continue;
    }
    if (Peek() == '&') {
      size_t semi = in_.find(';', pos_);
      if (semi == std::string_view::npos) return Error("unterminated entity");
      XQ_ASSIGN_OR_RETURN(std::string decoded,
                          DecodeEntities(in_.substr(pos_, semi + 1 - pos_)));
      text += decoded;
      pos_ = semi + 1;
    }
  }
}

Result<XmlDocument> XmlParser::Parse() {
  XmlDocument doc;
  XQ_RETURN_IF_ERROR(SkipProlog(&doc));
  if (AtEnd() || Peek() != '<') return Error("expected root element");
  XQ_ASSIGN_OR_RETURN(auto root, ParseElement());
  doc.SetRoot(std::move(root));
  // Trailing misc (comments / PIs / whitespace) only.
  while (true) {
    SkipWhitespace();
    if (AtEnd()) break;
    if (LookingAt("<!--")) {
      XQ_RETURN_IF_ERROR(SkipComment());
      continue;
    }
    if (LookingAt("<?")) {
      XQ_ASSIGN_OR_RETURN(auto pi, ParsePi());
      (void)pi;
      continue;
    }
    return Error("content after root element");
  }
  return doc;
}

}  // namespace

Result<std::string> DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    size_t semi = text.find(';', i);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference in: " +
                                std::string(text.substr(i, 20)));
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      uint32_t cp = 0;
      bool ok = entity.size() > 1;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        for (size_t k = 2; k < entity.size() && ok; ++k) {
          char c = entity[k];
          uint32_t digit;
          if (c >= '0' && c <= '9') {
            digit = static_cast<uint32_t>(c - '0');
          } else if (c >= 'a' && c <= 'f') {
            digit = static_cast<uint32_t>(c - 'a' + 10);
          } else if (c >= 'A' && c <= 'F') {
            digit = static_cast<uint32_t>(c - 'A' + 10);
          } else {
            ok = false;
            break;
          }
          cp = cp * 16 + digit;
        }
        ok = ok && entity.size() > 2;
      } else {
        for (size_t k = 1; k < entity.size() && ok; ++k) {
          if (entity[k] < '0' || entity[k] > '9') {
            ok = false;
            break;
          }
          cp = cp * 10 + static_cast<uint32_t>(entity[k] - '0');
        }
      }
      if (!ok || cp > 0x10FFFF || cp == 0) {
        return Status::ParseError("bad character reference &" +
                                  std::string(entity) + ";");
      }
      AppendUtf8(cp, &out);
    } else {
      return Status::ParseError("unknown entity &" + std::string(entity) +
                                ";");
    }
    i = semi + 1;
  }
  return out;
}

Result<XmlDocument> ParseXml(std::string_view input,
                             const ParseOptions& options) {
  XmlParser parser(input, options);
  return parser.Parse();
}

}  // namespace xomatiq::xml
