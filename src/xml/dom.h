#ifndef XOMATIQ_XML_DOM_H_
#define XOMATIQ_XML_DOM_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xomatiq::xml {

enum class NodeKind : uint8_t {
  kDocument = 0,
  kElement = 1,
  kText = 2,
  kComment = 3,
  kProcessingInstruction = 4,
};

std::string_view NodeKindName(NodeKind kind);

struct XmlAttribute {
  std::string name;
  std::string value;
};

// One DOM node. Children are owned; parent pointers are non-owning.
// Document order is implicit in the tree (pre-order); the shredder assigns
// explicit ordinals when loading into the relational store.
class XmlNode {
 public:
  explicit XmlNode(NodeKind kind) : kind_(kind) {}
  XmlNode(NodeKind kind, std::string name)
      : kind_(kind), name_(std::move(name)) {}

  XmlNode(const XmlNode&) = delete;
  XmlNode& operator=(const XmlNode&) = delete;

  NodeKind kind() const { return kind_; }
  // Element tag / PI target.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  // Text content / comment body / PI payload.
  const std::string& value() const { return value_; }
  void set_value(std::string value) { value_ = std::move(value); }

  XmlNode* parent() const { return parent_; }
  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }
  const std::vector<XmlAttribute>& attributes() const { return attributes_; }

  // Appends and returns a child (ownership transferred).
  XmlNode* AppendChild(std::unique_ptr<XmlNode> child);
  // Convenience builders.
  XmlNode* AddElement(std::string name);
  XmlNode* AddText(std::string text);
  // Adds an element with a single text child; returns the element.
  XmlNode* AddTextElement(std::string name, std::string text);
  void AddAttribute(std::string name, std::string value);

  // First attribute value by name; nullptr when absent.
  const std::string* FindAttribute(std::string_view name) const;

  // First child element with tag `name`; nullptr when absent.
  const XmlNode* FirstChildElement(std::string_view name) const;
  // All child elements with tag `name` (direct children only).
  std::vector<const XmlNode*> ChildElements(std::string_view name) const;
  // All child elements regardless of tag.
  std::vector<const XmlNode*> ChildElements() const;

  // Concatenation of all direct text children.
  std::string Text() const;
  // Text of the first child element `name`, or "".
  std::string ChildText(std::string_view name) const;

  // Pre-order walk including this node; visitor returns false to stop.
  bool Visit(const std::function<bool(const XmlNode&)>& visitor) const;

  // Descendant-or-self elements with tag `name`.
  std::vector<const XmlNode*> Descendants(std::string_view name) const;

  // Rooted label path of this element, e.g. "/hlx_enzyme/db_entry/comment".
  std::string LabelPath() const;

  // Number of nodes in this subtree (this node included).
  size_t SubtreeSize() const;

  // Deep copy (parent of the copy is null).
  std::unique_ptr<XmlNode> Clone() const;

  // Structural equality: kind, name, value, attributes (ordered) and
  // children all equal. Used by round-trip property tests.
  static bool DeepEqual(const XmlNode& a, const XmlNode& b);

 private:
  NodeKind kind_;
  std::string name_;
  std::string value_;
  std::vector<XmlAttribute> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
  XmlNode* parent_ = nullptr;
};

// An XML document: prolog info plus the root element.
class XmlDocument {
 public:
  XmlDocument()
      : node_(std::make_unique<XmlNode>(NodeKind::kDocument)) {}

  XmlDocument(const XmlDocument&) = delete;
  XmlDocument& operator=(const XmlDocument&) = delete;
  XmlDocument(XmlDocument&&) = default;
  XmlDocument& operator=(XmlDocument&&) = default;

  // Sets / returns the single root element.
  XmlNode* SetRoot(std::unique_ptr<XmlNode> root);
  XmlNode* CreateRoot(std::string name);
  const XmlNode* root() const;
  XmlNode* mutable_root();

  const XmlNode& document_node() const { return *node_; }

  const std::string& doctype_name() const { return doctype_name_; }
  void set_doctype_name(std::string name) {
    doctype_name_ = std::move(name);
  }

 private:
  // Owned via pointer so moving an XmlDocument never relocates the node
  // (children hold parent back-pointers into it).
  std::unique_ptr<XmlNode> node_;
  std::string doctype_name_;
};

}  // namespace xomatiq::xml

#endif  // XOMATIQ_XML_DOM_H_
