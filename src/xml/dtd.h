#ifndef XOMATIQ_XML_DTD_H_
#define XOMATIQ_XML_DTD_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace xomatiq::xml {

// Occurrence modifier on a content particle.
enum class CmOcc : uint8_t { kOne, kOpt, kStar, kPlus };

enum class CmKind : uint8_t { kName, kSeq, kChoice };

// A node of an ELEMENT content model, e.g. (a, (b | c)*, d?).
struct ContentParticle {
  CmKind kind = CmKind::kName;
  CmOcc occ = CmOcc::kOne;
  std::string name;                        // kName
  std::vector<ContentParticle> children;   // kSeq / kChoice

  std::string ToString() const;
};

enum class ContentKind : uint8_t {
  kEmpty,      // EMPTY
  kAny,        // ANY
  kPcdataOnly, // (#PCDATA)
  kMixed,      // (#PCDATA | a | b)*
  kModel,      // element content model
};

enum class AttrType : uint8_t {
  kCdata,
  kNmtoken,
  kNmtokens,
  kId,
  kIdref,
  kEnum,
};

enum class AttrDefault : uint8_t { kRequired, kImplied, kFixed, kDefault };

struct DtdAttribute {
  std::string name;
  AttrType type = AttrType::kCdata;
  std::vector<std::string> enum_values;  // kEnum
  AttrDefault def = AttrDefault::kImplied;
  std::string default_value;  // kFixed / kDefault
};

struct DtdElement {
  std::string name;
  ContentKind content = ContentKind::kPcdataOnly;
  ContentParticle model;                 // kModel
  std::vector<std::string> mixed_names;  // kMixed
  std::vector<DtdAttribute> attributes;
};

// A parsed Document Type Definition: element declarations with content
// models plus attribute lists. This is the structure the XomatiQ GUI's
// left panel renders (paper Fig 7a) and the validator checks documents
// against before shredding.
class Dtd {
 public:
  Dtd() = default;

  // Adds a declaration; AlreadyExists on duplicate element names.
  common::Status AddElement(DtdElement element);
  common::Status AddAttributes(const std::string& element,
                               std::vector<DtdAttribute> attributes);

  const DtdElement* FindElement(const std::string& name) const;
  const std::map<std::string, DtdElement>& elements() const {
    return elements_;
  }

  // The declared element that no other declaration references (root
  // candidate); empty when ambiguous.
  std::string InferRootElement() const;

  // Validates `doc`, appending one message per violation. Returns true
  // when no violations were found.
  bool Validate(const XmlDocument& doc, std::vector<std::string>* errors) const;
  bool Validate(const XmlNode& element, std::vector<std::string>* errors) const;

  // Typed-status validation for callers on the Result/Status error surface
  // (warehouse load/sync): OK when `doc` conforms, else
  // kConstraintViolation summarizing the first violations. A DTD with no
  // declarations accepts everything.
  common::Status CheckValid(const XmlDocument& doc) const;

  // Re-emits DTD text (<!ELEMENT ...> / <!ATTLIST ...>) — regenerates the
  // paper's Fig 5 artifact.
  std::string ToString() const;

  // ASCII tree of the content structure rooted at `root` (the GUI's DTD
  // panel). Recursion is cycle-guarded.
  std::string FormatTree(const std::string& root) const;

 private:
  std::map<std::string, DtdElement> elements_;
};

// Parses DTD text containing <!ELEMENT> and <!ATTLIST> declarations
// (parameter entities unsupported; comments allowed).
common::Result<Dtd> ParseDtd(std::string_view text);

}  // namespace xomatiq::xml

#endif  // XOMATIQ_XML_DTD_H_
