#include "xml/dom.h"

namespace xomatiq::xml {

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDocument:
      return "document";
    case NodeKind::kElement:
      return "element";
    case NodeKind::kText:
      return "text";
    case NodeKind::kComment:
      return "comment";
    case NodeKind::kProcessingInstruction:
      return "pi";
  }
  return "?";
}

XmlNode* XmlNode::AppendChild(std::unique_ptr<XmlNode> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

XmlNode* XmlNode::AddElement(std::string name) {
  return AppendChild(
      std::make_unique<XmlNode>(NodeKind::kElement, std::move(name)));
}

XmlNode* XmlNode::AddText(std::string text) {
  auto node = std::make_unique<XmlNode>(NodeKind::kText);
  node->set_value(std::move(text));
  return AppendChild(std::move(node));
}

XmlNode* XmlNode::AddTextElement(std::string name, std::string text) {
  XmlNode* el = AddElement(std::move(name));
  el->AddText(std::move(text));
  return el;
}

void XmlNode::AddAttribute(std::string name, std::string value) {
  attributes_.push_back({std::move(name), std::move(value)});
}

const std::string* XmlNode::FindAttribute(std::string_view name) const {
  for (const XmlAttribute& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

const XmlNode* XmlNode::FirstChildElement(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->kind_ == NodeKind::kElement && child->name_ == name) {
      return child.get();
    }
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::ChildElements(
    std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children_) {
    if (child->kind_ == NodeKind::kElement && child->name_ == name) {
      out.push_back(child.get());
    }
  }
  return out;
}

std::vector<const XmlNode*> XmlNode::ChildElements() const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children_) {
    if (child->kind_ == NodeKind::kElement) out.push_back(child.get());
  }
  return out;
}

std::string XmlNode::Text() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->kind_ == NodeKind::kText) out += child->value_;
  }
  return out;
}

std::string XmlNode::ChildText(std::string_view name) const {
  const XmlNode* child = FirstChildElement(name);
  return child == nullptr ? "" : child->Text();
}

bool XmlNode::Visit(const std::function<bool(const XmlNode&)>& visitor) const {
  if (!visitor(*this)) return false;
  for (const auto& child : children_) {
    if (!child->Visit(visitor)) return false;
  }
  return true;
}

std::vector<const XmlNode*> XmlNode::Descendants(std::string_view name) const {
  std::vector<const XmlNode*> out;
  Visit([&](const XmlNode& node) {
    if (node.kind() == NodeKind::kElement && node.name() == name) {
      out.push_back(&node);
    }
    return true;
  });
  return out;
}

std::string XmlNode::LabelPath() const {
  if (parent_ == nullptr || parent_->kind_ == NodeKind::kDocument) {
    return "/" + name_;
  }
  return parent_->LabelPath() + "/" + name_;
}

size_t XmlNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children_) n += child->SubtreeSize();
  return n;
}

std::unique_ptr<XmlNode> XmlNode::Clone() const {
  auto copy = std::make_unique<XmlNode>(kind_, name_);
  copy->value_ = value_;
  copy->attributes_ = attributes_;
  for (const auto& child : children_) {
    copy->AppendChild(child->Clone());
  }
  return copy;
}

bool XmlNode::DeepEqual(const XmlNode& a, const XmlNode& b) {
  if (a.kind_ != b.kind_ || a.name_ != b.name_ || a.value_ != b.value_) {
    return false;
  }
  if (a.attributes_.size() != b.attributes_.size()) return false;
  for (size_t i = 0; i < a.attributes_.size(); ++i) {
    if (a.attributes_[i].name != b.attributes_[i].name ||
        a.attributes_[i].value != b.attributes_[i].value) {
      return false;
    }
  }
  if (a.children_.size() != b.children_.size()) return false;
  for (size_t i = 0; i < a.children_.size(); ++i) {
    if (!DeepEqual(*a.children_[i], *b.children_[i])) return false;
  }
  return true;
}

XmlNode* XmlDocument::SetRoot(std::unique_ptr<XmlNode> root) {
  return node_->AppendChild(std::move(root));
}

XmlNode* XmlDocument::CreateRoot(std::string name) {
  return node_->AppendChild(
      std::make_unique<XmlNode>(NodeKind::kElement, std::move(name)));
}

const XmlNode* XmlDocument::root() const {
  for (const auto& child : node_->children()) {
    if (child->kind() == NodeKind::kElement) return child.get();
  }
  return nullptr;
}

XmlNode* XmlDocument::mutable_root() {
  return const_cast<XmlNode*>(root());
}

}  // namespace xomatiq::xml
