#ifndef XOMATIQ_XML_PARSER_H_
#define XOMATIQ_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/dom.h"

namespace xomatiq::xml {

struct ParseOptions {
  // Drop text nodes that contain only whitespace (data-centric default;
  // the serializer pretty-prints, so round-trips stay stable).
  bool strip_whitespace_text = true;
  // Keep comments / processing instructions in the DOM.
  bool keep_comments = false;
  bool keep_processing_instructions = false;
};

// Parses an XML 1.0 document (no external entities, no namespaces beyond
// treating ':' as a name character). Supports the XML declaration, a
// DOCTYPE declaration (internal subset skipped; the name is recorded),
// comments, PIs, CDATA sections, and the five predefined entities plus
// numeric character references.
common::Result<XmlDocument> ParseXml(std::string_view input,
                                     const ParseOptions& options = {});

// Decodes entity references in `text` (&amp; &lt; &gt; &apos; &quot;,
// &#NN; and &#xHH; for code points up to U+10FFFF, encoded as UTF-8).
common::Result<std::string> DecodeEntities(std::string_view text);

}  // namespace xomatiq::xml

#endif  // XOMATIQ_XML_PARSER_H_
