#include "xml/dtd.h"

#include <cctype>
#include <set>

#include "common/string_util.h"

namespace xomatiq::xml {

using common::Result;
using common::Status;

namespace {

std::string OccSuffix(CmOcc occ) {
  switch (occ) {
    case CmOcc::kOne:
      return "";
    case CmOcc::kOpt:
      return "?";
    case CmOcc::kStar:
      return "*";
    case CmOcc::kPlus:
      return "+";
  }
  return "";
}

}  // namespace

std::string ContentParticle::ToString() const {
  if (kind == CmKind::kName) return name + OccSuffix(occ);
  std::string sep = kind == CmKind::kSeq ? ", " : " | ";
  std::string out = "(";
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += sep;
    out += children[i].ToString();
  }
  out += ")";
  return out + OccSuffix(occ);
}

Status Dtd::AddElement(DtdElement element) {
  auto [it, inserted] = elements_.emplace(element.name, std::move(element));
  if (!inserted) {
    return Status::AlreadyExists("duplicate element declaration: " +
                                 it->first);
  }
  return Status::OK();
}

Status Dtd::AddAttributes(const std::string& element,
                          std::vector<DtdAttribute> attributes) {
  auto it = elements_.find(element);
  if (it == elements_.end()) {
    // XML allows ATTLIST before ELEMENT; create a placeholder.
    DtdElement placeholder;
    placeholder.name = element;
    placeholder.content = ContentKind::kAny;
    it = elements_.emplace(element, std::move(placeholder)).first;
  }
  for (DtdAttribute& attr : attributes) {
    it->second.attributes.push_back(std::move(attr));
  }
  return Status::OK();
}

const DtdElement* Dtd::FindElement(const std::string& name) const {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : &it->second;
}

std::string Dtd::InferRootElement() const {
  std::set<std::string> referenced;
  std::function<void(const ContentParticle&)> walk =
      [&](const ContentParticle& p) {
        if (p.kind == CmKind::kName) {
          referenced.insert(p.name);
          return;
        }
        for (const ContentParticle& c : p.children) walk(c);
      };
  for (const auto& [name, el] : elements_) {
    if (el.content == ContentKind::kModel) walk(el.model);
    for (const std::string& m : el.mixed_names) referenced.insert(m);
  }
  std::string root;
  for (const auto& [name, el] : elements_) {
    if (referenced.count(name) == 0) {
      if (!root.empty()) return "";  // ambiguous
      root = name;
    }
  }
  return root;
}

// --- validation --------------------------------------------------------

namespace {

// Positions reachable after matching `p` exactly once starting at each
// position in `from`.
void MatchOnce(const ContentParticle& p,
               const std::vector<std::string_view>& names,
               const std::set<size_t>& from, std::set<size_t>* out);

// Positions reachable after matching `p` with its occurrence modifier.
// Results are unioned into `out` (callers may accumulate over choices).
void MatchParticle(const ContentParticle& p,
                   const std::vector<std::string_view>& names,
                   const std::set<size_t>& from, std::set<size_t>* out) {
  std::set<size_t> once;
  MatchOnce(p, names, from, &once);
  switch (p.occ) {
    case CmOcc::kOne:
      out->insert(once.begin(), once.end());
      return;
    case CmOcc::kOpt:
      out->insert(once.begin(), once.end());
      out->insert(from.begin(), from.end());
      return;
    case CmOcc::kStar:
    case CmOcc::kPlus: {
      std::set<size_t> acc = once;
      std::set<size_t> frontier = once;
      while (!frontier.empty()) {
        std::set<size_t> next;
        MatchOnce(p, names, frontier, &next);
        std::set<size_t> fresh;
        for (size_t pos : next) {
          if (acc.insert(pos).second) fresh.insert(pos);
        }
        frontier = std::move(fresh);
      }
      out->insert(acc.begin(), acc.end());
      if (p.occ == CmOcc::kStar) out->insert(from.begin(), from.end());
      return;
    }
  }
}

void MatchOnce(const ContentParticle& p,
               const std::vector<std::string_view>& names,
               const std::set<size_t>& from, std::set<size_t>* out) {
  switch (p.kind) {
    case CmKind::kName:
      for (size_t pos : from) {
        if (pos < names.size() && names[pos] == p.name) {
          out->insert(pos + 1);
        }
      }
      return;
    case CmKind::kSeq: {
      std::set<size_t> current = from;
      for (const ContentParticle& child : p.children) {
        std::set<size_t> next;
        MatchParticle(child, names, current, &next);
        current = std::move(next);
        if (current.empty()) return;
      }
      out->insert(current.begin(), current.end());
      return;
    }
    case CmKind::kChoice:
      for (const ContentParticle& child : p.children) {
        MatchParticle(child, names, from, out);
      }
      return;
  }
}

bool MatchesModel(const ContentParticle& model,
                  const std::vector<std::string_view>& names) {
  std::set<size_t> result;
  MatchParticle(model, names, {0}, &result);
  return result.count(names.size()) > 0;
}

bool IsNmtoken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.' || c == ':')) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool Dtd::Validate(const XmlNode& element,
                   std::vector<std::string>* errors) const {
  size_t before = errors->size();
  const DtdElement* decl = FindElement(element.name());
  if (decl == nullptr) {
    errors->push_back("undeclared element <" + element.name() + ">");
    return false;
  }
  // Attribute checks.
  for (const XmlAttribute& attr : element.attributes()) {
    const DtdAttribute* adecl = nullptr;
    for (const DtdAttribute& a : decl->attributes) {
      if (a.name == attr.name) {
        adecl = &a;
        break;
      }
    }
    if (adecl == nullptr) {
      errors->push_back("undeclared attribute '" + attr.name + "' on <" +
                        element.name() + ">");
      continue;
    }
    switch (adecl->type) {
      case AttrType::kNmtoken:
      case AttrType::kId:
      case AttrType::kIdref:
        if (!IsNmtoken(attr.value)) {
          errors->push_back("attribute '" + attr.name + "' on <" +
                            element.name() + "> is not a NMTOKEN: '" +
                            attr.value + "'");
        }
        break;
      case AttrType::kNmtokens: {
        for (const std::string& tok : common::SplitWhitespace(attr.value)) {
          if (!IsNmtoken(tok)) {
            errors->push_back("attribute '" + attr.name + "' on <" +
                              element.name() + "> has a bad NMTOKEN: '" +
                              tok + "'");
          }
        }
        break;
      }
      case AttrType::kEnum: {
        bool found = false;
        for (const std::string& v : adecl->enum_values) {
          if (v == attr.value) {
            found = true;
            break;
          }
        }
        if (!found) {
          errors->push_back("attribute '" + attr.name + "' on <" +
                            element.name() + "> has value '" + attr.value +
                            "' outside its enumeration");
        }
        break;
      }
      case AttrType::kCdata:
        break;
    }
    if (adecl->def == AttrDefault::kFixed &&
        attr.value != adecl->default_value) {
      errors->push_back("attribute '" + attr.name + "' on <" +
                        element.name() + "> must be fixed to '" +
                        adecl->default_value + "'");
    }
  }
  for (const DtdAttribute& a : decl->attributes) {
    if (a.def == AttrDefault::kRequired &&
        element.FindAttribute(a.name) == nullptr) {
      errors->push_back("missing required attribute '" + a.name + "' on <" +
                        element.name() + ">");
    }
  }
  // Content checks.
  std::vector<std::string_view> child_names;
  bool has_text = false;
  for (const auto& child : element.children()) {
    if (child->kind() == NodeKind::kElement) {
      child_names.push_back(child->name());
    } else if (child->kind() == NodeKind::kText &&
               !common::StripWhitespace(child->value()).empty()) {
      has_text = true;
    }
  }
  switch (decl->content) {
    case ContentKind::kEmpty:
      if (!child_names.empty() || has_text) {
        errors->push_back("<" + element.name() + "> declared EMPTY");
      }
      break;
    case ContentKind::kAny:
      break;
    case ContentKind::kPcdataOnly:
      if (!child_names.empty()) {
        errors->push_back("<" + element.name() +
                          "> allows only character data");
      }
      break;
    case ContentKind::kMixed:
      for (std::string_view child : child_names) {
        bool allowed = false;
        for (const std::string& m : decl->mixed_names) {
          if (m == child) {
            allowed = true;
            break;
          }
        }
        if (!allowed) {
          errors->push_back("<" + std::string(child) +
                            "> not allowed in mixed content of <" +
                            element.name() + ">");
        }
      }
      break;
    case ContentKind::kModel:
      if (has_text) {
        errors->push_back("character data not allowed inside <" +
                          element.name() + ">");
      }
      if (!MatchesModel(decl->model, child_names)) {
        std::string seq;
        for (size_t i = 0; i < child_names.size(); ++i) {
          if (i > 0) seq += ", ";
          seq += child_names[i];
        }
        errors->push_back("children (" + seq + ") of <" + element.name() +
                          "> do not match model " + decl->model.ToString());
      }
      break;
  }
  // Recurse.
  for (const auto& child : element.children()) {
    if (child->kind() == NodeKind::kElement) {
      Validate(*child, errors);
    }
  }
  return errors->size() == before;
}

bool Dtd::Validate(const XmlDocument& doc,
                   std::vector<std::string>* errors) const {
  const XmlNode* root = doc.root();
  if (root == nullptr) {
    errors->push_back("document has no root element");
    return false;
  }
  return Validate(*root, errors);
}

common::Status Dtd::CheckValid(const XmlDocument& doc) const {
  if (elements_.empty()) return common::Status::OK();
  std::vector<std::string> errors;
  if (Validate(doc, &errors)) return common::Status::OK();
  std::string msg = "DTD validation failed: " + errors.front();
  if (errors.size() > 1) {
    msg += " (and " + std::to_string(errors.size() - 1) + " more)";
  }
  return common::Status::ConstraintViolation(std::move(msg));
}

// --- formatting ----------------------------------------------------------

std::string Dtd::ToString() const {
  std::string out;
  for (const auto& [name, el] : elements_) {
    out += "<!ELEMENT " + name + " ";
    switch (el.content) {
      case ContentKind::kEmpty:
        out += "EMPTY";
        break;
      case ContentKind::kAny:
        out += "ANY";
        break;
      case ContentKind::kPcdataOnly:
        out += "(#PCDATA)";
        break;
      case ContentKind::kMixed: {
        out += "(#PCDATA";
        for (const std::string& m : el.mixed_names) out += " | " + m;
        out += ")*";
        break;
      }
      case ContentKind::kModel:
        out += el.model.ToString();
        break;
    }
    out += ">\n";
    if (!el.attributes.empty()) {
      out += "<!ATTLIST " + name;
      for (const DtdAttribute& a : el.attributes) {
        out += "\n  " + a.name + " ";
        switch (a.type) {
          case AttrType::kCdata: out += "CDATA"; break;
          case AttrType::kNmtoken: out += "NMTOKEN"; break;
          case AttrType::kNmtokens: out += "NMTOKENS"; break;
          case AttrType::kId: out += "ID"; break;
          case AttrType::kIdref: out += "IDREF"; break;
          case AttrType::kEnum: {
            out += "(";
            for (size_t i = 0; i < a.enum_values.size(); ++i) {
              if (i > 0) out += " | ";
              out += a.enum_values[i];
            }
            out += ")";
            break;
          }
        }
        switch (a.def) {
          case AttrDefault::kRequired: out += " #REQUIRED"; break;
          case AttrDefault::kImplied: out += " #IMPLIED"; break;
          case AttrDefault::kFixed:
            out += " #FIXED \"" + a.default_value + "\"";
            break;
          case AttrDefault::kDefault:
            out += " \"" + a.default_value + "\"";
            break;
        }
      }
      out += "\n>\n";
    }
  }
  return out;
}

namespace {

void FormatParticle(const Dtd& dtd, const ContentParticle& p,
                    const std::string& prefix, int depth,
                    std::set<std::string>* on_path, std::string* out);

void FormatElementBody(const Dtd& dtd, const DtdElement& el,
                       const std::string& prefix, int depth,
                       std::set<std::string>* on_path, std::string* out) {
  switch (el.content) {
    case ContentKind::kModel:
      FormatParticle(dtd, el.model, prefix, depth, on_path, out);
      break;
    case ContentKind::kMixed:
      for (const std::string& m : el.mixed_names) {
        ContentParticle p;
        p.kind = CmKind::kName;
        p.name = m;
        p.occ = CmOcc::kStar;
        FormatParticle(dtd, p, prefix, depth, on_path, out);
      }
      break;
    default:
      break;
  }
}

void FormatParticle(const Dtd& dtd, const ContentParticle& p,
                    const std::string& prefix, int depth,
                    std::set<std::string>* on_path, std::string* out) {
  if (depth > 24) {
    *out += prefix + "...\n";
    return;
  }
  if (p.kind != CmKind::kName) {
    for (const ContentParticle& c : p.children) {
      ContentParticle adjusted = c;
      // Propagate an outer */+ so "(a | b)*" renders both as repeating.
      if (p.occ == CmOcc::kStar || p.occ == CmOcc::kPlus) {
        if (adjusted.occ == CmOcc::kOne) adjusted.occ = p.occ;
      }
      FormatParticle(dtd, adjusted, prefix, depth, on_path, out);
    }
    return;
  }
  const DtdElement* child = dtd.FindElement(p.name);
  std::string line = prefix + "+- " + p.name + OccSuffix(p.occ);
  if (child != nullptr) {
    if (child->content == ContentKind::kPcdataOnly) line += " (#PCDATA)";
    for (const DtdAttribute& a : child->attributes) {
      line += " @" + a.name;
    }
  }
  *out += line + "\n";
  if (child != nullptr && on_path->insert(p.name).second) {
    FormatElementBody(dtd, *child, prefix + "|  ", depth + 1, on_path, out);
    on_path->erase(p.name);
  }
}

}  // namespace

std::string Dtd::FormatTree(const std::string& root) const {
  const DtdElement* el = FindElement(root);
  if (el == nullptr) return "(unknown element " + root + ")\n";
  std::string out = root + "\n";
  std::set<std::string> on_path{root};
  FormatElementBody(*this, *el, "", 0, &on_path, &out);
  return out;
}

// --- parsing -------------------------------------------------------------

namespace {

class DtdParser {
 public:
  explicit DtdParser(std::string_view text) : in_(text) {}

  Result<Dtd> Parse();

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool LookingAt(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }
  Result<std::string> ParseName();
  Result<ContentParticle> ParseParticle();
  Result<DtdElement> ParseElementDecl();
  Result<std::pair<std::string, std::vector<DtdAttribute>>> ParseAttlist();

  std::string_view in_;
  size_t pos_ = 0;
};

bool IsDtdNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

Result<std::string> DtdParser::ParseName() {
  SkipWhitespace();
  size_t start = pos_;
  while (!AtEnd() && IsDtdNameChar(Peek())) ++pos_;
  if (pos_ == start) return Error("expected a name");
  return std::string(in_.substr(start, pos_ - start));
}

// Parses one content particle: name or parenthesized group, with an
// optional occurrence suffix.
Result<ContentParticle> DtdParser::ParseParticle() {
  SkipWhitespace();
  ContentParticle p;
  if (!AtEnd() && Peek() == '(') {
    ++pos_;
    std::vector<ContentParticle> items;
    char sep = 0;
    while (true) {
      XQ_ASSIGN_OR_RETURN(ContentParticle item, ParseParticle());
      items.push_back(std::move(item));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated group");
      char c = Peek();
      if (c == ')') {
        ++pos_;
        break;
      }
      if (c != ',' && c != '|') return Error("expected ',' '|' or ')'");
      if (sep != 0 && sep != c) {
        return Error("mixed ',' and '|' in one group");
      }
      sep = c;
      ++pos_;
    }
    // Single-item groups stay wrapped so "(db_entry)" re-emits with its
    // parentheses (a bare name is not a valid element content model).
    p.kind = sep == '|' ? CmKind::kChoice : CmKind::kSeq;
    p.children = std::move(items);
  } else {
    XQ_ASSIGN_OR_RETURN(p.name, ParseName());
    p.kind = CmKind::kName;
  }
  if (!AtEnd()) {
    char c = Peek();
    if (c == '?' || c == '*' || c == '+') {
      CmOcc occ = c == '?' ? CmOcc::kOpt : (c == '*' ? CmOcc::kStar : CmOcc::kPlus);
      if (p.occ == CmOcc::kOne) {
        p.occ = occ;
      } else if (p.occ != occ) {
        // (a?)* and friends: wrap to preserve both modifiers.
        ContentParticle wrapper;
        wrapper.kind = CmKind::kSeq;
        wrapper.occ = occ;
        wrapper.children.push_back(std::move(p));
        p = std::move(wrapper);
      }
      ++pos_;
    }
  }
  return p;
}

Result<DtdElement> DtdParser::ParseElementDecl() {
  DtdElement el;
  XQ_ASSIGN_OR_RETURN(el.name, ParseName());
  SkipWhitespace();
  if (LookingAt("EMPTY")) {
    pos_ += 5;
    el.content = ContentKind::kEmpty;
    return el;
  }
  if (LookingAt("ANY")) {
    pos_ += 3;
    el.content = ContentKind::kAny;
    return el;
  }
  if (AtEnd() || Peek() != '(') return Error("expected a content model");
  // Peek inside for #PCDATA.
  size_t save = pos_;
  ++pos_;
  SkipWhitespace();
  if (LookingAt("#PCDATA")) {
    pos_ += 7;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ')') {
      ++pos_;
      if (!AtEnd() && Peek() == '*') ++pos_;
      el.content = ContentKind::kPcdataOnly;
      return el;
    }
    // Mixed: (#PCDATA | a | b)*
    el.content = ContentKind::kMixed;
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated mixed model");
      if (Peek() == ')') {
        ++pos_;
        if (!AtEnd() && Peek() == '*') ++pos_;
        return el;
      }
      if (Peek() != '|') return Error("expected '|' in mixed model");
      ++pos_;
      XQ_ASSIGN_OR_RETURN(std::string name, ParseName());
      el.mixed_names.push_back(std::move(name));
    }
  }
  pos_ = save;
  XQ_ASSIGN_OR_RETURN(el.model, ParseParticle());
  el.content = ContentKind::kModel;
  return el;
}

Result<std::pair<std::string, std::vector<DtdAttribute>>>
DtdParser::ParseAttlist() {
  XQ_ASSIGN_OR_RETURN(std::string element, ParseName());
  std::vector<DtdAttribute> attrs;
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated ATTLIST");
    if (Peek() == '>') break;
    DtdAttribute attr;
    XQ_ASSIGN_OR_RETURN(attr.name, ParseName());
    SkipWhitespace();
    if (LookingAt("CDATA")) {
      pos_ += 5;
      attr.type = AttrType::kCdata;
    } else if (LookingAt("NMTOKENS")) {
      pos_ += 8;
      attr.type = AttrType::kNmtokens;
    } else if (LookingAt("NMTOKEN")) {
      pos_ += 7;
      attr.type = AttrType::kNmtoken;
    } else if (LookingAt("IDREF")) {
      pos_ += 5;
      attr.type = AttrType::kIdref;
    } else if (LookingAt("ID")) {
      pos_ += 2;
      attr.type = AttrType::kId;
    } else if (Peek() == '(') {
      ++pos_;
      attr.type = AttrType::kEnum;
      while (true) {
        XQ_ASSIGN_OR_RETURN(std::string v, ParseName());
        attr.enum_values.push_back(std::move(v));
        SkipWhitespace();
        if (AtEnd()) return Error("unterminated enumeration");
        if (Peek() == ')') {
          ++pos_;
          break;
        }
        if (Peek() != '|') return Error("expected '|' in enumeration");
        ++pos_;
      }
    } else {
      return Error("unknown attribute type");
    }
    SkipWhitespace();
    if (LookingAt("#REQUIRED")) {
      pos_ += 9;
      attr.def = AttrDefault::kRequired;
    } else if (LookingAt("#IMPLIED")) {
      pos_ += 8;
      attr.def = AttrDefault::kImplied;
    } else {
      if (LookingAt("#FIXED")) {
        pos_ += 6;
        attr.def = AttrDefault::kFixed;
        SkipWhitespace();
      } else {
        attr.def = AttrDefault::kDefault;
      }
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected a default value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated default value");
      attr.default_value = std::string(in_.substr(start, pos_ - start));
      ++pos_;
    }
    attrs.push_back(std::move(attr));
  }
  return std::make_pair(std::move(element), std::move(attrs));
}

Result<Dtd> DtdParser::Parse() {
  Dtd dtd;
  while (true) {
    SkipWhitespace();
    if (AtEnd()) break;
    if (LookingAt("<!--")) {
      size_t end = in_.find("-->", pos_);
      if (end == std::string_view::npos) return Error("unterminated comment");
      pos_ = end + 3;
      continue;
    }
    if (LookingAt("<?")) {  // e.g. an <?xml?> declaration atop the file
      size_t end = in_.find("?>", pos_);
      if (end == std::string_view::npos) return Error("unterminated PI");
      pos_ = end + 2;
      continue;
    }
    if (LookingAt("<!ELEMENT")) {
      pos_ += 9;
      XQ_ASSIGN_OR_RETURN(DtdElement el, ParseElementDecl());
      SkipWhitespace();
      if (AtEnd() || Peek() != '>') return Error("expected '>'");
      ++pos_;
      XQ_RETURN_IF_ERROR(dtd.AddElement(std::move(el)));
      continue;
    }
    if (LookingAt("<!ATTLIST")) {
      pos_ += 9;
      XQ_ASSIGN_OR_RETURN(auto attlist, ParseAttlist());
      SkipWhitespace();
      if (AtEnd() || Peek() != '>') return Error("expected '>'");
      ++pos_;
      XQ_RETURN_IF_ERROR(
          dtd.AddAttributes(attlist.first, std::move(attlist.second)));
      continue;
    }
    return Error("expected <!ELEMENT or <!ATTLIST");
  }
  return dtd;
}

}  // namespace

Result<Dtd> ParseDtd(std::string_view text) {
  DtdParser parser(text);
  return parser.Parse();
}

}  // namespace xomatiq::xml
