#ifndef XOMATIQ_DATAGEN_CORPUS_H_
#define XOMATIQ_DATAGEN_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "flatfile/embl.h"
#include "flatfile/enzyme.h"
#include "flatfile/swissprot.h"

namespace xomatiq::datagen {

// Knobs for the synthetic ENZYME / Swiss-Prot / EMBL corpus. The corpus
// substitutes for the paper's live database downloads (DESIGN.md): sizes,
// keyword selectivities and cross-database link density are controlled so
// every reproduced query has verifiable expected results and benchmarks
// can sweep scale.
struct CorpusOptions {
  uint64_t seed = 42;

  size_t num_enzymes = 100;
  size_t num_proteins = 200;     // Swiss-Prot
  size_t num_nucleotides = 300;  // EMBL

  // Fraction of Swiss-Prot / EMBL entries that mention the planted
  // keyword (paper Fig 8 searches "cdc6" across both databases).
  double keyword_fraction = 0.05;
  std::string planted_keyword = "cdc6";

  // Fraction of enzymes whose catalytic activity mentions "ketone"
  // (paper Fig 7a / Fig 9 sub-tree query).
  double ketone_fraction = 0.10;

  // Fraction of EMBL entries carrying an /EC_number qualifier that joins
  // to a generated enzyme (paper Fig 10/11 join query).
  double ec_link_fraction = 0.50;

  // Residue counts for generated sequences.
  size_t nucleotide_length = 240;
  size_t protein_length = 180;

  // EMBL division tag for generated entries ("INV" in the paper's
  // hlx_embl.inv collection).
  std::string embl_division = "INV";
};

struct Corpus {
  std::vector<flatfile::EnzymeEntry> enzymes;
  std::vector<flatfile::SwissProtEntry> proteins;
  std::vector<flatfile::EmblEntry> nucleotides;

  // Ground truth for verifying reproduced queries.
  size_t proteins_with_keyword = 0;
  size_t nucleotides_with_keyword = 0;
  size_t enzymes_with_ketone = 0;
  size_t nucleotides_with_ec_link = 0;
};

// Generates a deterministic, cross-linked corpus.
Corpus GenerateCorpus(const CorpusOptions& options);

// Flat-file renderings (concatenated entries), as fetched by the paper's
// Data Hounds transport stage.
std::string ToEnzymeFlatFile(const Corpus& corpus);
std::string ToSwissProtFlatFile(const Corpus& corpus);
std::string ToEmblFlatFile(const Corpus& corpus);

// The exact ENZYME entry of the paper's Fig 2 (EC 1.14.17.3,
// peptidylglycine monooxygenase) for artifact regeneration.
flatfile::EnzymeEntry Figure2Entry();

}  // namespace xomatiq::datagen

#endif  // XOMATIQ_DATAGEN_CORPUS_H_
