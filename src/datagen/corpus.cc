#include "datagen/corpus.h"

#include "common/rng.h"
#include "common/string_util.h"

namespace xomatiq::datagen {

using common::Rng;
using flatfile::EmblEntry;
using flatfile::EmblFeature;
using flatfile::EmblQualifier;
using flatfile::EnzymeEntry;
using flatfile::SwissProtEntry;

namespace {

const std::vector<std::string>& EnzymeActions() {
  static const auto* kWords = new std::vector<std::string>{
      "dehydrogenase", "kinase",      "oxidase",    "monooxygenase",
      "transferase",   "hydrolase",   "ligase",     "isomerase",
      "reductase",     "synthase",    "peptidase",  "phosphatase",
      "carboxylase",   "decarboxylase",
  };
  return *kWords;
}

const std::vector<std::string>& Substrates() {
  static const auto* kWords = new std::vector<std::string>{
      "alcohol",   "peptidylglycine", "glucose",  "pyruvate",
      "alanine",   "glycerol",        "lactate",  "citrate",
      "malate",    "glutamate",       "fructose", "succinate",
      "histidine", "aspartate",
  };
  return *kWords;
}

const std::vector<std::string>& Cofactors() {
  static const auto* kWords = new std::vector<std::string>{
      "Copper", "Zinc",     "Iron", "Magnesium",
      "FAD",    "NAD",      "Heme", "Manganese",
  };
  return *kWords;
}

const std::vector<std::string>& Species() {
  static const auto* kWords = new std::vector<std::string>{
      "BOVIN", "HUMAN", "RAT", "MOUSE", "XENLA", "YEAST", "ECOLI", "DROME",
  };
  return *kWords;
}

const std::vector<std::string>& Organisms() {
  static const auto* kWords = new std::vector<std::string>{
      "Bos taurus (Bovine)",
      "Homo sapiens (Human)",
      "Rattus norvegicus (Rat)",
      "Mus musculus (Mouse)",
      "Xenopus laevis (African clawed frog)",
      "Saccharomyces cerevisiae (Baker's yeast)",
      "Escherichia coli",
      "Drosophila melanogaster (Fruit fly)",
  };
  return *kWords;
}

const std::vector<std::string>& GeneralKeywords() {
  static const auto* kWords = new std::vector<std::string>{
      "Oxidoreductase",   "Hydrolase",     "Metal-binding",
      "Glycoprotein",     "Membrane",      "Signal",
      "Zinc-finger",      "Transcription", "DNA-binding",
      "Cell cycle",       "Repeat",        "Phosphorylation",
  };
  return *kWords;
}

std::string RandomSequence(Rng* rng, std::string_view alphabet, size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(alphabet[rng->Uniform(alphabet.size())]);
  }
  return out;
}

// Unique per index (the full index is embedded), random-looking prefix.
std::string ProteinName(Rng* rng, size_t index) {
  static constexpr char kLetters[] = "ABCDEFGHIKLMNPQRSTVWY";
  std::string stem;
  for (int i = 0; i < 3; ++i) {
    stem.push_back(kLetters[rng->Uniform(sizeof(kLetters) - 1)]);
  }
  stem += std::to_string(index);
  return stem;
}

}  // namespace

Corpus GenerateCorpus(const CorpusOptions& options) {
  Rng rng(options.seed);
  Corpus corpus;

  // --- enzymes ---------------------------------------------------------
  corpus.enzymes.reserve(options.num_enzymes);
  for (size_t i = 0; i < options.num_enzymes; ++i) {
    EnzymeEntry e;
    // Unique EC number: serial in the last position.
    e.id = std::to_string(1 + rng.Uniform(6)) + "." +
           std::to_string(1 + rng.Uniform(20)) + "." +
           std::to_string(1 + rng.Uniform(30)) + "." + std::to_string(i + 1);
    const std::string& action = rng.Pick(EnzymeActions());
    const std::string& substrate = rng.Pick(Substrates());
    e.descriptions.push_back(substrate + " " + action);
    if (rng.Bernoulli(0.4)) {
      e.alternate_names.push_back(rng.Pick(Substrates()) + " " +
                                  rng.Pick(EnzymeActions()));
    }
    bool ketone = rng.Bernoulli(options.ketone_fraction);
    std::string activity = substrate + " + NAD(+) = " +
                           (ketone ? std::string("ketone body + NADH")
                                   : rng.Pick(Substrates()) + " + NADH");
    e.catalytic_activities.push_back(activity);
    if (ketone) ++corpus.enzymes_with_ketone;
    if (rng.Bernoulli(0.6)) e.cofactors.push_back(rng.Pick(Cofactors()));
    if (rng.Bernoulli(0.5)) {
      e.comments.push_back("Acts preferentially on " + rng.Pick(Substrates()) +
                           " in the penultimate position.");
    }
    if (rng.Bernoulli(0.3)) {
      e.prosite_refs.push_back(
          common::StrFormat("PDOC%05d", static_cast<int>(rng.Uniform(99999))));
    }
    if (rng.Bernoulli(0.15)) {
      EnzymeEntry::DiseaseRef disease;
      disease.description =
          rng.Pick(Substrates()) + " metabolism disorder";
      disease.mim_id = std::to_string(100000 + rng.Uniform(900000));
      e.diseases.push_back(std::move(disease));
    }
    corpus.enzymes.push_back(std::move(e));
  }

  // --- Swiss-Prot proteins ---------------------------------------------
  corpus.proteins.reserve(options.num_proteins);
  for (size_t i = 0; i < options.num_proteins; ++i) {
    SwissProtEntry p;
    size_t species_idx = rng.Uniform(Species().size());
    p.id = ProteinName(&rng, i) + "_" + Species()[species_idx];
    p.status = "STANDARD";
    p.accessions.push_back(
        common::StrFormat("P%05d", static_cast<int>(10000 + i)));
    p.organism = Organisms()[species_idx];
    p.sequence = RandomSequence(&rng, "ACDEFGHIKLMNPQRSTVWY",
                                options.protein_length);
    p.length = p.sequence.size();

    bool keyword = rng.Bernoulli(options.keyword_fraction);
    if (keyword) ++corpus.proteins_with_keyword;
    // Link ~60% of proteins to an enzyme; the enzyme links back so the
    // ENZYME DR lines form a consistent bipartite graph.
    if (!corpus.enzymes.empty() && rng.Bernoulli(0.6)) {
      EnzymeEntry& enzyme = corpus.enzymes[rng.Uniform(corpus.enzymes.size())];
      p.description = enzyme.descriptions.front() + " (EC " + enzyme.id + ")";
      p.xrefs.push_back({"ENZYME", enzyme.id, ""});
      enzyme.swissprot_refs.push_back({p.accessions.front(), p.id});
    } else {
      p.description = rng.Pick(Substrates()) + " binding protein";
    }
    if (keyword) {
      p.description += " involved in " + options.planted_keyword +
                       " dependent replication licensing";
      p.keywords.push_back(options.planted_keyword);
      p.gene_names.push_back(common::AsciiToLower(options.planted_keyword));
    } else if (rng.Bernoulli(0.7)) {
      p.gene_names.push_back(common::AsciiToLower(ProteinName(&rng, i)));
    }
    p.keywords.push_back(rng.Pick(GeneralKeywords()));
    if (rng.Bernoulli(0.4)) p.keywords.push_back(rng.Pick(GeneralKeywords()));
    if (rng.Bernoulli(0.5)) {
      p.comments.push_back("FUNCTION: catalyzes the conversion of " +
                           rng.Pick(Substrates()) + ".");
    }
    corpus.proteins.push_back(std::move(p));
  }

  // --- EMBL nucleotide entries ------------------------------------------
  corpus.nucleotides.reserve(options.num_nucleotides);
  for (size_t i = 0; i < options.num_nucleotides; ++i) {
    EmblEntry n;
    n.id = common::StrFormat("AB%06d", static_cast<int>(i + 1));
    n.division = options.embl_division;
    n.molecule = "DNA";
    n.accessions.push_back(n.id);
    size_t organism_idx = rng.Uniform(Organisms().size());
    n.organism = Organisms()[organism_idx];
    n.sequence = RandomSequence(&rng, "acgt", options.nucleotide_length);

    bool keyword = rng.Bernoulli(options.keyword_fraction);
    if (keyword) ++corpus.nucleotides_with_keyword;
    bool ec_link =
        !corpus.enzymes.empty() && rng.Bernoulli(options.ec_link_fraction);

    EmblFeature source;
    source.key = "source";
    source.location = "1.." + std::to_string(n.sequence.size());
    source.qualifiers.push_back({"organism", n.organism});
    n.features.push_back(std::move(source));

    EmblFeature cds;
    cds.key = "CDS";
    size_t start = 1 + rng.Uniform(20);
    cds.location = std::to_string(start) + ".." +
                   std::to_string(start + 3 * (n.sequence.size() / 4));
    if (ec_link) {
      const EnzymeEntry& enzyme =
          corpus.enzymes[rng.Uniform(corpus.enzymes.size())];
      cds.qualifiers.push_back({"EC_number", enzyme.id});
      n.description = "gene for " + enzyme.descriptions.front();
      ++corpus.nucleotides_with_ec_link;
    } else {
      n.description = rng.Pick(Substrates()) + " gene, partial cds";
    }
    if (!corpus.proteins.empty() && rng.Bernoulli(0.5)) {
      const SwissProtEntry& protein =
          corpus.proteins[rng.Uniform(corpus.proteins.size())];
      cds.qualifiers.push_back(
          {"db_xref", "SWISS-PROT:" + protein.accessions.front()});
      n.xrefs.push_back({"SWISS-PROT", protein.accessions.front(),
                         protein.id});
    }
    if (keyword) {
      cds.qualifiers.push_back(
          {"gene", common::AsciiToLower(options.planted_keyword)});
      n.keywords.push_back(options.planted_keyword);
      n.description += "; cell division cycle protein " +
                       options.planted_keyword;
    }
    n.features.push_back(std::move(cds));
    if (rng.Bernoulli(0.5)) n.keywords.push_back(rng.Pick(GeneralKeywords()));
    corpus.nucleotides.push_back(std::move(n));
  }

  return corpus;
}

std::string ToEnzymeFlatFile(const Corpus& corpus) {
  std::string out;
  for (const EnzymeEntry& e : corpus.enzymes) {
    out += flatfile::FormatEnzymeEntry(e);
  }
  return out;
}

std::string ToSwissProtFlatFile(const Corpus& corpus) {
  std::string out;
  for (const SwissProtEntry& p : corpus.proteins) {
    out += flatfile::FormatSwissProtEntry(p);
  }
  return out;
}

std::string ToEmblFlatFile(const Corpus& corpus) {
  std::string out;
  for (const EmblEntry& n : corpus.nucleotides) {
    out += flatfile::FormatEmblEntry(n);
  }
  return out;
}

flatfile::EnzymeEntry Figure2Entry() {
  flatfile::EnzymeEntry e;
  e.id = "1.14.17.3";
  e.descriptions = {"Peptidylglycine monooxygenase"};
  e.alternate_names = {"Peptidyl alpha-amidating enzyme",
                       "Peptidylglycine 2-hydroxylase"};
  e.catalytic_activities = {
      "Peptidylglycine + ascorbate + O(2) = peptidyl(2-hydroxyglycine) +",
      "dehydroascorbate + H(2)O"};
  e.cofactors = {"Copper"};
  e.comments = {
      "Peptidylglycines with a neutral amino acid residue in the "
      "penultimate position are the best substrates for the enzyme.",
      "The enzyme also catalyzes the dismutatation of the product to "
      "glyoxylate and the corresponding desglycine peptide amide."};
  e.prosite_refs = {"PDOC00080"};
  e.swissprot_refs = {{"P10731", "AMD_BOVIN"},
                      {"P19021", "AMD_HUMAN"},
                      {"P14925", "AMD_RAT"},
                      {"P08478", "AMD1_XENLA"},
                      {"P12890", "AMD2_XENLA"}};
  return e;
}

}  // namespace xomatiq::datagen
