// xomatiq_shell: interactive client for xomatiq_server.
//
//   xomatiq_shell [--host H] [--port N]
//
// Queries end with ';' and may span lines. The leading mode sticks until
// changed:
//   .xq       XomatiQ queries, table output (default)
//   .xml      XomatiQ queries, re-tagged XML output
//   .sql      raw SQL against the generic schema
//   .explain  show the relational plans behind a XomatiQ query
//   .stats    server metrics snapshot
//   .ping     liveness probe
//   .quit

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "client/client.h"

namespace {

using namespace xomatiq;

void PrintRows(const srv::Response& response) {
  std::vector<size_t> widths;
  for (const std::string& col : response.columns) {
    widths.push_back(col.size());
  }
  std::vector<std::vector<std::string>> cells;
  for (const rel::Tuple& row : response.rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      std::string text = row[i].ToString();
      if (i >= widths.size()) widths.push_back(0);
      if (text.size() > widths[i]) widths[i] = text.size();
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }
  auto rule = [&] {
    std::putchar('+');
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) std::putchar('-');
      std::putchar('+');
    }
    std::putchar('\n');
  };
  rule();
  std::putchar('|');
  for (size_t i = 0; i < widths.size(); ++i) {
    const char* name = i < response.columns.size()
                           ? response.columns[i].c_str()
                           : "";
    std::printf(" %-*s |", static_cast<int>(widths[i]), name);
  }
  std::putchar('\n');
  rule();
  for (const auto& line : cells) {
    std::putchar('|');
    for (size_t i = 0; i < widths.size(); ++i) {
      const char* text = i < line.size() ? line[i].c_str() : "";
      std::printf(" %-*s |", static_cast<int>(widths[i]), text);
    }
    std::putchar('\n');
  }
  rule();
  std::printf("%zu row%s%s\n", cells.size(), cells.size() == 1 ? "" : "s",
              response.cached() ? " (cached)" : "");
}

void Run(cli::Client& client, srv::RequestMode mode,
         const std::string& text) {
  auto response = client.Execute(mode, text);
  if (!response.ok()) {
    std::printf("transport error: %s\n",
                response.status().ToString().c_str());
    return;
  }
  if (!response->ok()) {
    std::printf("error: %s\n", response->status().ToString().c_str());
    return;
  }
  if (response->kind == srv::PayloadKind::kRows) {
    PrintRows(*response);
  } else {
    std::printf("%s%s\n", response->text.c_str(),
                response->cached() ? "\n(cached)" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7333;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: xomatiq_shell [--host H] [--port N]\n");
      return 2;
    }
  }
  // Tolerate a server that is still coming up: a few connect retries with
  // backoff before giving up.
  auto client = cli::Client::ConnectWithRetry(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%u -- .help for commands\n", host.c_str(),
              port);

  srv::RequestMode mode = srv::RequestMode::kXq;
  std::string pending;
  char line[4096];
  std::printf("xq> ");
  std::fflush(stdout);
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    if (pending.empty() && !text.empty() && text[0] == '.') {
      if (text == ".quit" || text == ".exit") break;
      if (text == ".sql") {
        mode = srv::RequestMode::kSql;
      } else if (text == ".xq") {
        mode = srv::RequestMode::kXq;
      } else if (text == ".xml") {
        mode = srv::RequestMode::kXqXml;
      } else if (text == ".explain") {
        mode = srv::RequestMode::kExplain;
      } else if (text == ".stats") {
        Run(*client, srv::RequestMode::kStats, "");
      } else if (text == ".ping") {
        Run(*client, srv::RequestMode::kPing, "");
      } else {
        std::printf(
            ".sql | .xq | .xml | .explain : switch query mode\n"
            ".stats | .ping               : server introspection\n"
            ".quit                        : leave\n"
            "anything else: a query, terminated by ';'\n");
      }
      std::printf("%s> ", srv::RequestModeName(mode).data());
      std::fflush(stdout);
      continue;
    }
    pending += text;
    size_t end = pending.find(';');
    if (end == std::string::npos) {
      pending += '\n';
      std::printf("  > ");
      std::fflush(stdout);
      continue;
    }
    std::string query = pending.substr(0, end);
    pending.clear();
    if (!query.empty()) Run(*client, mode, query);
    std::printf("%s> ", srv::RequestModeName(mode).data());
    std::fflush(stdout);
  }
  return 0;
}
