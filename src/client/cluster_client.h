#ifndef XOMATIQ_CLIENT_CLUSTER_CLIENT_H_
#define XOMATIQ_CLIENT_CLUSTER_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "client/client.h"

namespace xomatiq::cli {

// One endpoint of a replicated deployment.
struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct ClusterOptions {
  Endpoint primary;
  std::vector<Endpoint> replicas;  // may be empty: everything → primary
  // Connect/execute retry schedule per endpoint.
  RetryPolicy retry;
};

// Read/write-splitting client over one primary plus any number of read
// replicas.
//
// Routing:
//   - Writes (SQL mutations, ANALYZE) go to the primary. The commit LSN
//     the server attaches to the response is remembered as
//     last_write_lsn().
//   - Reads go to replicas round-robin, carrying min_lsn =
//     last_write_lsn(), so a read issued after a write never observes the
//     pre-write state: the replica serves once it has caught up, waits
//     briefly, or answers kLagging — at which point the read falls over
//     to the next replica and finally to the primary. kReadOnly (replica
//     refusing a misrouted write) and transport errors fall through the
//     same way.
//
// Connections are opened lazily and re-opened after transport errors.
// Like Client, an instance is not thread-safe; use one per thread.
class ClusterClient {
 public:
  explicit ClusterClient(ClusterOptions options);

  // Keyword-routed: SQL mutations and ANALYZE → Write, all else → Read.
  common::Result<srv::Response> Execute(const common::QueryRequest& req);

  common::Result<srv::Response> Write(const common::QueryRequest& req);
  common::Result<srv::Response> Read(const common::QueryRequest& req);

  // Back-compat shims over the QueryRequest entry points.
  [[deprecated("pass a common::QueryRequest instead")]]
  common::Result<srv::Response> Execute(srv::RequestMode mode,
                                        std::string_view text,
                                        const common::QueryOptions& opts = {}) {
    return Execute(MakeRequest(mode, text, opts));
  }
  [[deprecated("pass a common::QueryRequest instead")]]
  common::Result<srv::Response> Write(srv::RequestMode mode,
                                      std::string_view text,
                                      const common::QueryOptions& opts = {}) {
    return Write(MakeRequest(mode, text, opts));
  }
  [[deprecated("pass a common::QueryRequest instead")]]
  common::Result<srv::Response> Read(srv::RequestMode mode,
                                     std::string_view text,
                                     const common::QueryOptions& opts = {}) {
    return Read(MakeRequest(mode, text, opts));
  }

  // Shorthands, routed like Execute.
  common::Result<srv::Response> Sql(std::string_view text) {
    return Execute(common::QueryRequest::Sql(std::string(text)));
  }
  common::Result<srv::Response> Xq(std::string_view text) {
    return Execute(common::QueryRequest::Xq(std::string(text)));
  }

  // Commit LSN of the most recent successful write (0 before any); the
  // consistency token attached to subsequent reads.
  uint64_t last_write_lsn() const { return last_write_lsn_; }

  // Routing counters, for tests and the bench harness.
  struct Stats {
    uint64_t primary_requests = 0;   // writes + read fallbacks served there
    uint64_t replica_requests = 0;   // reads answered by a replica
    uint64_t replica_fallbacks = 0;  // reads bounced off a replica
  };
  const Stats& stats() const { return stats_; }

 private:
  common::Result<srv::Response> OnPrimary(const common::QueryRequest& req);

  static common::QueryRequest MakeRequest(srv::RequestMode mode,
                                          std::string_view text,
                                          const common::QueryOptions& opts) {
    common::QueryRequest req;
    req.mode = static_cast<common::QueryMode>(mode);
    req.text = std::string(text);
    req.options = opts;
    return req;
  }

  ClusterOptions options_;
  std::optional<Client> primary_;
  std::vector<std::optional<Client>> replicas_;
  size_t rr_next_ = 0;  // round-robin cursor over replicas_
  uint64_t last_write_lsn_ = 0;
  Stats stats_;
};

}  // namespace xomatiq::cli

#endif  // XOMATIQ_CLIENT_CLUSTER_CLIENT_H_
