#include "client/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace xomatiq::cli {

using common::Result;
using common::Status;

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::IoError("connect " + host + ":" + std::to_string(port) +
                        ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), next_id_(other.next_id_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<srv::Response> Client::Execute(srv::RequestMode mode,
                                      std::string_view text) {
  if (fd_ < 0) return Status::IoError("client is closed");
  srv::Request request;
  request.id = next_id_++;
  request.mode = mode;
  request.text = std::string(text);
  XQ_RETURN_IF_ERROR(srv::WriteFrame(fd_, srv::EncodeRequest(request)));
  while (true) {
    XQ_ASSIGN_OR_RETURN(std::string frame,
                        srv::ReadFrame(fd_, srv::kDefaultMaxFrameBytes));
    XQ_ASSIGN_OR_RETURN(srv::Response response, srv::DecodeResponse(frame));
    // A session-level error (id 0, e.g. the server timing us out) or a
    // stale reply for an abandoned request is not ours to swallow.
    if (response.id == request.id) return response;
    if (response.id == 0) return response.status();
  }
}

}  // namespace xomatiq::cli
