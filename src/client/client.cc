#include "client/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "common/trace.h"

namespace xomatiq::cli {

using common::Result;
using common::Status;
using common::StatusCode;

namespace {

// Process-unique 64-bit trace ids: a splitmix64 step over a seed mixing
// the clock with a per-process counter. No coordination with the server
// is needed — the id only has to be unique among the traces an operator
// might try to correlate.
uint64_t GenerateTraceId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t x = static_cast<uint64_t>(
                   std::chrono::steady_clock::now().time_since_epoch().count())
               + 0x9e3779b97f4a7c15ULL *
                     (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x != 0 ? x : 1;  // 0 means "no id" on the wire
}

// Raw TCP connect; no handshake.
Result<int> ConnectFd(const std::string& host, uint16_t port) {
  // No-op unless the caller installed a Trace on this thread (the traced
  // Execute path does for reconnects; embedders can too).
  common::TraceSpan span("client.connect");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::IoError("connect " + host + ":" + std::to_string(port) +
                        ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

// Hello exchange on a fresh connection; returns the negotiated features.
// A typed error response from the server (e.g. kUnsupported on a major
// mismatch) is surfaced verbatim.
Result<uint32_t> Handshake(int fd) {
  XQ_RETURN_IF_ERROR(srv::WriteFrame(fd, srv::EncodeHello(srv::Hello{})));
  XQ_ASSIGN_OR_RETURN(std::string frame,
                      srv::ReadFrame(fd, srv::kDefaultMaxFrameBytes));
  if (srv::IsHelloFrame(frame)) {
    XQ_ASSIGN_OR_RETURN(srv::Hello ack, srv::DecodeHello(frame));
    return ack.features;
  }
  // Not a hello: the server refused (typed error response, id 0).
  XQ_ASSIGN_OR_RETURN(srv::Response response, srv::DecodeResponse(frame));
  if (!response.ok()) return response.status();
  return Status::Corruption("unexpected handshake reply");
}

// Transport-level failures worth a reconnect+resend: the connection is
// dead or suspect, but the server may well be fine.
bool IsTransportError(StatusCode code) {
  return code == StatusCode::kIoError || code == StatusCode::kCorruption ||
         code == StatusCode::kNotFound || code == StatusCode::kTimeout;
}

// The shared backoff schedule (common/backoff.h) drives both connect and
// execute retries.
using common::Backoff;

}  // namespace

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  XQ_ASSIGN_OR_RETURN(int fd, ConnectFd(host, port));
  auto features = Handshake(fd);
  if (!features.ok()) {
    ::close(fd);
    return features.status();
  }
  return Client(fd, host, port, *features);
}

Result<Client> Client::ConnectWithRetry(const std::string& host,
                                        uint16_t port,
                                        const RetryPolicy& policy) {
  Backoff backoff(policy);
  Status last = Status::IoError("no connect attempts made");
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0 && !backoff.SleepBeforeRetry(attempt - 1)) break;
    auto client = Connect(host, port);
    if (client.ok()) return client;
    last = client.status();
    // A typed protocol rejection is deterministic; retrying only delays
    // the inevitable.
    if (!IsTransportError(last.code())) return last;
  }
  return last;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      host_(std::move(other.host_)),
      port_(other.port_),
      features_(other.features_),
      next_id_(other.next_id_),
      last_trace_json_(std::move(other.last_trace_json_)),
      last_trace_id_(other.last_trace_id_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    host_ = std::move(other.host_);
    port_ = other.port_;
    features_ = other.features_;
    next_id_ = other.next_id_;
    last_trace_json_ = std::move(other.last_trace_json_);
    last_trace_id_ = other.last_trace_id_;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::Reconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  XQ_ASSIGN_OR_RETURN(int fd, ConnectFd(host_, port_));
  auto features = Handshake(fd);
  if (!features.ok()) {
    ::close(fd);
    return features.status();
  }
  fd_ = fd;
  features_ = *features;
  return Status::OK();
}

Result<srv::Response> Client::Execute(const common::QueryRequest& req) {
  if (fd_ < 0) return Status::IoError("client is closed");
  // QueryMode mirrors RequestMode value-for-value (see query_request.h).
  const srv::RequestMode mode = static_cast<srv::RequestMode>(req.mode);
  const std::string& text = req.text;
  common::QueryOptions opts = req.options;
  // The trace id only goes on the wire when the server ack'd the feature;
  // a 1.1 server would reject the longer tail as trailing bytes.
  if ((features_ & srv::kFeatureTraceContext) == 0) {
    opts.trace_id = 0;
  } else if (opts.trace && opts.trace_id == 0) {
    opts.trace_id = GenerateTraceId();
  }
  // Same discipline for the 1.3 consistency token: a pre-LSN server would
  // choke on the extra tail field.
  if ((features_ & srv::kFeatureLsn) == 0) opts.min_lsn = 0;
  auto run = [&]() -> Result<srv::Response> {
    srv::Request request;
    request.id = next_id_++;
    request.mode = mode;
    request.text = text;
    if (opts != common::QueryOptions{} &&
        (features_ & srv::kFeatureQueryOptions) != 0) {
      request.options = opts;
      request.has_options = true;
    }
    std::string frame_out;
    {
      common::TraceSpan span("client.encode");
      frame_out = srv::EncodeRequest(request);
    }
    {
      common::TraceSpan span("client.send");
      XQ_RETURN_IF_ERROR(srv::WriteFrame(fd_, frame_out));
    }
    // One span for the whole round trip (the server's own spans fill the
    // gap), plus a decode span per reply frame.
    common::TraceSpan rtt("client.rtt");
    while (true) {
      XQ_ASSIGN_OR_RETURN(std::string frame,
                          srv::ReadFrame(fd_, srv::kDefaultMaxFrameBytes));
      common::TraceSpan span("client.decode");
      XQ_ASSIGN_OR_RETURN(srv::Response response, srv::DecodeResponse(frame));
      // A session-level error (id 0, e.g. the server timing us out) or a
      // stale reply for an abandoned request is not ours to swallow.
      if (response.id == request.id) return response;
      if (response.id == 0) return response.status();
    }
  };
  if (!opts.trace) return run();
  // Traced request: record the client's half of the timeline on pid 2 and
  // keep it for LastTraceJson, even when the attempt fails.
  common::Trace trace;
  trace.set_trace_id(opts.trace_id);
  Result<srv::Response> result = [&] {
    common::TraceScope scope(&trace);
    return run();
  }();
  last_trace_json_ = trace.ToChromeJson(/*pid=*/2);
  last_trace_id_ = opts.trace_id;
  return result;
}

Result<srv::Response> Client::ExecuteWithRetry(const common::QueryRequest& req,
                                               const RetryPolicy& policy) {
  Backoff backoff(policy);
  Status last = Status::IoError("no execute attempts made");
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0 && !backoff.SleepBeforeRetry(attempt - 1)) break;
    if (fd_ < 0) {
      Status s = Reconnect();
      if (!s.ok()) {
        last = s;
        if (!IsTransportError(s.code())) return s;
        continue;
      }
    }
    auto response = Execute(req);
    if (response.ok()) {
      // Server-side OVERLOADED is explicit pushback: back off and resend
      // on the same (healthy) connection. Any other server error is the
      // query's own problem and returns immediately.
      if (response->code == StatusCode::kOverloaded) {
        last = response->status();
        continue;
      }
      return response;
    }
    last = response.status();
    if (!IsTransportError(last.code())) return last;
    // Dead or suspect connection: drop it so the next attempt reconnects.
    ::close(fd_);
    fd_ = -1;
  }
  return last;
}

}  // namespace xomatiq::cli
