#include "client/cluster_client.h"

#include <utility>

namespace xomatiq::cli {

using common::Result;
using common::Status;
using common::StatusCode;

namespace {

// Mirrors the server's own routing keyword scan (query_service.cc):
// statements the primary must execute.
bool IsWriteStatement(std::string_view text) {
  size_t i = text.find_first_not_of(" \t\r\n");
  std::string word;
  for (; i != std::string_view::npos && i < text.size(); ++i) {
    char c = text[i];
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))) break;
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
    word.push_back(c);
  }
  return word == "insert" || word == "update" || word == "delete" ||
         word == "create" || word == "drop" || word == "analyze";
}

}  // namespace

ClusterClient::ClusterClient(ClusterOptions options)
    : options_(std::move(options)),
      replicas_(options_.replicas.size()) {}

Result<srv::Response> ClusterClient::Execute(const common::QueryRequest& req) {
  if (req.mode == common::QueryMode::kSql && IsWriteStatement(req.text)) {
    return Write(req);
  }
  return Read(req);
}

Result<srv::Response> ClusterClient::OnPrimary(
    const common::QueryRequest& req) {
  if (!primary_.has_value()) {
    Result<Client> c = Client::ConnectWithRetry(
        options_.primary.host, options_.primary.port, options_.retry);
    if (!c.ok()) return c.status();
    primary_.emplace(std::move(c).value());
  }
  Result<srv::Response> response =
      primary_->ExecuteWithRetry(req, options_.retry);
  if (!response.ok()) primary_.reset();  // transport failure: reconnect next time
  else ++stats_.primary_requests;
  return response;
}

Result<srv::Response> ClusterClient::Write(const common::QueryRequest& req) {
  Result<srv::Response> response = OnPrimary(req);
  if (response.ok() && response->ok() && response->lsn > last_write_lsn_) {
    last_write_lsn_ = response->lsn;
  }
  return response;
}

Result<srv::Response> ClusterClient::Read(const common::QueryRequest& req) {
  common::QueryRequest read_req = req;
  if (read_req.options.min_lsn == 0) read_req.options.min_lsn = last_write_lsn_;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    size_t slot = (rr_next_ + i) % replicas_.size();
    std::optional<Client>& replica = replicas_[slot];
    if (!replica.has_value()) {
      Result<Client> c =
          Client::ConnectWithRetry(options_.replicas[slot].host,
                                   options_.replicas[slot].port,
                                   options_.retry);
      if (!c.ok()) continue;  // unreachable replica: try the next one
      replica.emplace(std::move(c).value());
    }
    Result<srv::Response> response = replica->Execute(read_req);
    if (!response.ok()) {
      // Transport failure: drop the connection, read elsewhere.
      replica.reset();
      ++stats_.replica_fallbacks;
      continue;
    }
    if (response->code == StatusCode::kLagging ||
        response->code == StatusCode::kReadOnly) {
      // The replica cannot serve this (yet); its connection is healthy.
      ++stats_.replica_fallbacks;
      continue;
    }
    rr_next_ = (slot + 1) % replicas_.size();
    ++stats_.replica_requests;
    return response;
  }
  // No replica could serve: the primary always can (its applied LSN is by
  // definition >= any commit LSN it handed out).
  return OnPrimary(read_req);
}

}  // namespace xomatiq::cli
