#ifndef XOMATIQ_CLIENT_CLIENT_H_
#define XOMATIQ_CLIENT_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/backoff.h"
#include "common/query_options.h"
#include "common/query_request.h"
#include "common/result.h"
#include "server/protocol.h"

namespace xomatiq::cli {

// Resilience knobs for ConnectWithRetry / ExecuteWithRetry; shared with
// the replica applier's reconnect loop (see common/backoff.h for the
// schedule semantics).
using RetryPolicy = common::RetryPolicy;

// Blocking client for the xomatiq_server wire protocol: one TCP
// connection, one outstanding request at a time. Transport failures
// (connect refused, connection dropped, oversized reply) surface as the
// error of the returned Result; a server-side query failure surfaces as
// a *successful* Result whose Response carries the error status — the
// caller can distinguish "the server is gone" from "the query was bad".
//
// Connect() performs the protocol hello exchange (protocol.h): the client
// offers its version and feature bits, the server acks with the
// negotiated intersection (features()), or rejects a major-version
// mismatch with a typed kUnsupported status. Per-request QueryOptions are
// only put on the wire when the server acknowledged kFeatureQueryOptions.
//
// ExecuteWithRetry retries *transport* failures (reconnect + resend) and
// OVERLOADED pushback. Retried requests are at-least-once: a response
// dropped after execution re-runs the query, so use it for reads and
// idempotent operations, or accept duplicate effects.
//
// Not thread-safe; use one Client per thread.
class Client {
 public:
  static common::Result<Client> Connect(const std::string& host,
                                        uint16_t port);
  // Connect with backoff: retries refused/failed connections (and the
  // handshake's transport errors) under `policy`. A typed handshake
  // rejection (kUnsupported) is not retried — the server will not change
  // its mind.
  static common::Result<Client> ConnectWithRetry(const std::string& host,
                                                 uint16_t port,
                                                 const RetryPolicy& policy = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Primary entry point: one request, fully described. req.read_epoch is
  // an engine-side field and never goes on the wire — snapshot scoping is
  // the server Session's job.
  common::Result<srv::Response> Execute(const common::QueryRequest& req);

  // Execute with deadline-capped retries (see class comment for the
  // at-least-once caveat). Retries: transport errors (reconnect first) and
  // kOverloaded responses. Any other server-side error returns immediately.
  common::Result<srv::Response> ExecuteWithRetry(
      const common::QueryRequest& req, const RetryPolicy& policy = {});

  // Back-compat shims over the QueryRequest entry points. QueryMode
  // mirrors srv::RequestMode value-for-value, so the cast is exact.
  [[deprecated("pass a common::QueryRequest instead")]]
  common::Result<srv::Response> Execute(srv::RequestMode mode,
                                        std::string_view text,
                                        const common::QueryOptions& opts) {
    return Execute(MakeRequest(mode, text, opts));
  }
  common::Result<srv::Response> Execute(srv::RequestMode mode,
                                        std::string_view text) {
    return Execute(MakeRequest(mode, text, {}));
  }
  [[deprecated("pass a common::QueryRequest instead")]]
  common::Result<srv::Response> ExecuteWithRetry(
      srv::RequestMode mode, std::string_view text,
      const common::QueryOptions& opts = {}, const RetryPolicy& policy = {}) {
    return ExecuteWithRetry(MakeRequest(mode, text, opts), policy);
  }

  // Shorthands.
  common::Result<srv::Response> Sql(std::string_view text) {
    return Execute(common::QueryRequest::Sql(std::string(text)));
  }
  common::Result<srv::Response> Xq(std::string_view text) {
    return Execute(common::QueryRequest::Xq(std::string(text)));
  }

  int fd() const { return fd_; }
  // Feature bits acknowledged by the server's hello.
  uint32_t features() const { return features_; }

  // Chrome trace_event JSON of the client's side of the most recent traced
  // request (opts.trace set): connect/encode/send/rtt/decode spans on
  // pid 2, tagged with the trace id that went on the wire. Merge with the
  // server's half (GET /tracez?id=<last_trace_id> on the admin endpoint)
  // via common::MergeChromeTraceJson for one cross-process timeline.
  std::string LastTraceJson() const { return last_trace_json_; }
  // Trace id of that request (0 = none traced yet, or the server did not
  // ack kFeatureTraceContext). Client-generated unless the caller supplied
  // opts.trace_id.
  uint64_t last_trace_id() const { return last_trace_id_; }

 private:
  Client(int fd, std::string host, uint16_t port, uint32_t features)
      : fd_(fd), host_(std::move(host)), port_(port), features_(features) {}

  static common::QueryRequest MakeRequest(srv::RequestMode mode,
                                          std::string_view text,
                                          const common::QueryOptions& opts) {
    common::QueryRequest req;
    req.mode = static_cast<common::QueryMode>(mode);
    req.text = std::string(text);
    req.options = opts;
    return req;
  }

  // Tears down the socket and redoes Connect (including the handshake)
  // against the remembered endpoint.
  common::Status Reconnect();

  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
  uint32_t features_ = 0;
  uint64_t next_id_ = 1;
  std::string last_trace_json_;
  uint64_t last_trace_id_ = 0;
};

}  // namespace xomatiq::cli

#endif  // XOMATIQ_CLIENT_CLIENT_H_
