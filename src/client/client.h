#ifndef XOMATIQ_CLIENT_CLIENT_H_
#define XOMATIQ_CLIENT_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "server/protocol.h"

namespace xomatiq::cli {

// Blocking client for the xomatiq_server wire protocol: one TCP
// connection, one outstanding request at a time. Transport failures
// (connect refused, connection dropped, oversized reply) surface as the
// error of the returned Result; a server-side query failure surfaces as
// a *successful* Result whose Response carries the error status — the
// caller can distinguish "the server is gone" from "the query was bad".
//
// Not thread-safe; use one Client per thread.
class Client {
 public:
  static common::Result<Client> Connect(const std::string& host,
                                        uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  common::Result<srv::Response> Execute(srv::RequestMode mode,
                                        std::string_view text);

  // Shorthands.
  common::Result<srv::Response> Sql(std::string_view text) {
    return Execute(srv::RequestMode::kSql, text);
  }
  common::Result<srv::Response> Xq(std::string_view text) {
    return Execute(srv::RequestMode::kXq, text);
  }

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_id_ = 1;
};

}  // namespace xomatiq::cli

#endif  // XOMATIQ_CLIENT_CLIENT_H_
