#ifndef XOMATIQ_REPLICATION_REPL_SERVER_H_
#define XOMATIQ_REPLICATION_REPL_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "replication/repl_wire.h"

namespace xomatiq::repl {

struct ReplicationServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back via port()

  // Recent-record ring: a replica whose resume point has been evicted is
  // re-bootstrapped with a fresh snapshot instead of an error.
  size_t ring_max_records = 4096;
  size_t ring_max_bytes = 32u << 20;

  // Idle-stream heartbeat cadence (also bounds how stale a healthy
  // replica's freshness clock can get).
  uint32_t heartbeat_ms = 200;

  size_t max_frame_bytes = kReplMaxFrameBytes;
};

// Primary-side WAL shipper. Registers a WalSink on the database, buffers
// recent records in a bounded in-memory ring, and serves any number of
// replicas: each connection gets a snapshot if needed (cold start, or
// resume point older than the ring), then a continuous tail of records
// interleaved with heartbeats.
//
// Threads: one accept loop plus one thread per connected replica. Session
// threads only ever *read* database state under the shared latch (for
// snapshots); they never write, so replication cannot deadlock with the
// query path.
class ReplicationServer {
 public:
  // `db` must outlive the server. Start() attaches the WAL sink;
  // Shutdown() (or the destructor) detaches it.
  explicit ReplicationServer(rel::Database* db,
                             ReplicationServerOptions options = {});
  ~ReplicationServer();

  ReplicationServer(const ReplicationServer&) = delete;
  ReplicationServer& operator=(const ReplicationServer&) = delete;

  common::Status Start();
  void Shutdown();

  uint16_t port() const { return port_; }

  struct Stats {
    size_t replicas_connected = 0;
    uint64_t records_shipped = 0;
    uint64_t bytes_shipped = 0;
    uint64_t snapshots_shipped = 0;
    uint64_t durable_lsn = 0;
    size_t ring_records = 0;
    size_t ring_bytes = 0;
  };
  Stats stats() const;

  // One JSON object for the /statusz "replication" section.
  std::string StatuszJson() const;

 private:
  void OnRecord(uint64_t lsn, std::string_view payload);
  void AcceptLoop();
  void SessionLoop(int fd);
  // Sends a snapshot taken at the current durable LSN; returns the base
  // LSN to resume streaming from, or an error when the socket died.
  common::Result<uint64_t> SendSnapshot(int fd);

  rel::Database* db_;
  ReplicationServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex sessions_mu_;
  std::vector<std::thread> session_threads_;
  std::vector<int> session_fds_;  // open sockets, for Shutdown() to poke

  // Ring of (lsn, record) pairs, newest at the back. Guarded by ring_mu_;
  // ring_cv_ wakes tailing sessions when a record lands or on shutdown.
  mutable std::mutex ring_mu_;
  std::condition_variable ring_cv_;
  std::deque<std::pair<uint64_t, std::string>> ring_;
  size_t ring_bytes_ = 0;

  std::atomic<size_t> replicas_connected_{0};
  std::atomic<uint64_t> records_shipped_{0};
  std::atomic<uint64_t> bytes_shipped_{0};
  std::atomic<uint64_t> snapshots_shipped_{0};
};

}  // namespace xomatiq::repl

#endif  // XOMATIQ_REPLICATION_REPL_SERVER_H_
