#include "replication/repl_wire.h"

#include <cstring>

#include "relational/serde.h"

namespace xomatiq::repl {

using common::Result;
using common::Status;
using rel::BinaryReader;
using rel::BinaryWriter;

std::string_view ReplMsgTypeName(ReplMsgType type) {
  switch (type) {
    case ReplMsgType::kSnapshot:
      return "SNAPSHOT";
    case ReplMsgType::kRecord:
      return "RECORD";
    case ReplMsgType::kHeartbeat:
      return "HEARTBEAT";
    case ReplMsgType::kError:
      return "ERROR";
  }
  return "?";
}

std::string EncodeReplHello(const ReplHello& hello) {
  std::string out(kReplMagic, sizeof(kReplMagic));
  BinaryWriter w;
  w.PutU8(hello.major);
  w.PutU8(hello.minor);
  w.PutU64(hello.start_lsn);
  out += w.TakeBuffer();
  return out;
}

Result<ReplHello> DecodeReplHello(std::string_view body) {
  if (body.size() < sizeof(kReplMagic) ||
      std::memcmp(body.data(), kReplMagic, sizeof(kReplMagic)) != 0) {
    return Status::InvalidArgument("not a replication hello (bad magic)");
  }
  BinaryReader r(body.substr(sizeof(kReplMagic)));
  ReplHello hello;
  XQ_ASSIGN_OR_RETURN(hello.major, r.GetU8());
  XQ_ASSIGN_OR_RETURN(hello.minor, r.GetU8());
  XQ_ASSIGN_OR_RETURN(hello.start_lsn, r.GetU64());
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after replication hello");
  }
  return hello;
}

std::string EncodeReplMsg(const ReplMsg& msg) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(msg.type));
  w.PutU64(msg.lsn);
  w.PutU64(msg.send_unix_ms);
  w.PutU32(rel::Crc32(msg.payload));
  w.PutString(msg.payload);
  return w.TakeBuffer();
}

Result<ReplMsg> DecodeReplMsg(std::string_view body) {
  BinaryReader r(body);
  ReplMsg msg;
  XQ_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  if (type == 0 || type > kMaxReplMsgType) {
    return Status::Corruption("bad replication message type " +
                              std::to_string(type));
  }
  msg.type = static_cast<ReplMsgType>(type);
  XQ_ASSIGN_OR_RETURN(msg.lsn, r.GetU64());
  XQ_ASSIGN_OR_RETURN(msg.send_unix_ms, r.GetU64());
  XQ_ASSIGN_OR_RETURN(uint32_t crc, r.GetU32());
  XQ_ASSIGN_OR_RETURN(msg.payload, r.GetString());
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after replication message");
  }
  if (rel::Crc32(msg.payload) != crc) {
    return Status::Corruption("replication payload crc mismatch (" +
                              std::string(ReplMsgTypeName(msg.type)) +
                              " lsn " + std::to_string(msg.lsn) + ")");
  }
  return msg;
}

}  // namespace xomatiq::repl
