#ifndef XOMATIQ_REPLICATION_REPL_WIRE_H_
#define XOMATIQ_REPLICATION_REPL_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xomatiq::repl {

// XQRP — the WAL-shipping sub-protocol between a primary's
// ReplicationServer and a ReplicaApplier. It rides on the same u32
// length-prefixed framing as the query protocol (srv::WriteFrame /
// srv::ReadFrame), but frames flow almost entirely one way: the replica
// sends a single hello, then the primary streams messages until one side
// hangs up.
//
//   hello := "XQRP" | u8 major | u8 minor | u64 start_lsn
//   msg   := u8 type | u64 lsn | u64 send_unix_ms
//            | u32 crc32c(payload) | string payload
//
// `start_lsn` is the replica's applied LSN: 0 asks for a full snapshot, a
// nonzero value asks the primary to resume at start_lsn + 1 (the primary
// falls back to a snapshot when its ring no longer covers that record).
// Every message carries its payload's CRC32C; a mismatch on the replica
// means the bytes were damaged in flight and the connection is dropped,
// to be retried from the last durable position — identical in spirit to
// the WAL's own torn-tail discard.
//
// Message semantics by type:
//   kSnapshot   lsn = base LSN of the state body; payload =
//               rel::Database::EncodeState() bytes
//   kRecord     lsn = the record's LSN; payload = one WAL record
//   kHeartbeat  lsn = the primary's durable LSN; payload empty. Sent when
//               the stream is idle so the replica can compute lag and
//               prove freshness.
//   kError      payload = human-readable reason; the primary closes the
//               connection after sending one.

inline constexpr char kReplMagic[4] = {'X', 'Q', 'R', 'P'};
inline constexpr uint8_t kReplMajor = 1;
inline constexpr uint8_t kReplMinor = 0;

// Snapshots carry a whole database, so replication frames get a far
// larger budget than the 16 MiB query frames.
inline constexpr size_t kReplMaxFrameBytes = 256u << 20;

enum class ReplMsgType : uint8_t {
  kSnapshot = 1,
  kRecord = 2,
  kHeartbeat = 3,
  kError = 4,
};
inline constexpr uint8_t kMaxReplMsgType =
    static_cast<uint8_t>(ReplMsgType::kError);

std::string_view ReplMsgTypeName(ReplMsgType type);

struct ReplHello {
  uint8_t major = kReplMajor;
  uint8_t minor = kReplMinor;
  uint64_t start_lsn = 0;  // 0 = cold replica, send a snapshot
};

std::string EncodeReplHello(const ReplHello& hello);
common::Result<ReplHello> DecodeReplHello(std::string_view body);

struct ReplMsg {
  ReplMsgType type = ReplMsgType::kHeartbeat;
  uint64_t lsn = 0;
  uint64_t send_unix_ms = 0;  // primary wall clock at send, for lag_ms
  std::string payload;
};

std::string EncodeReplMsg(const ReplMsg& msg);
// Returns Corruption when the payload CRC does not match — the caller
// must treat the connection as damaged and reconnect.
common::Result<ReplMsg> DecodeReplMsg(std::string_view body);

}  // namespace xomatiq::repl

#endif  // XOMATIQ_REPLICATION_REPL_WIRE_H_
