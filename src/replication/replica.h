#ifndef XOMATIQ_REPLICATION_REPLICA_H_
#define XOMATIQ_REPLICATION_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/backoff.h"
#include "common/result.h"
#include "relational/database.h"
#include "replication/repl_wire.h"

namespace xomatiq::repl {

struct ReplicaApplierOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;

  // Reconnect schedule after a lost primary. Only the backoff shape is
  // used: the applier retries forever (deadline_ms/max_attempts do not
  // apply — a replica's job is to outwait primary restarts) and resets
  // the schedule after every successful connection.
  common::RetryPolicy reconnect;

  // ready() turns false when no message (record or heartbeat) has arrived
  // within this window — the primary is gone or unreachable, so reads
  // here may be arbitrarily stale.
  uint32_t stale_after_ms = 3000;

  size_t max_frame_bytes = kReplMaxFrameBytes;

  // Result-cache hook, invoked after records apply: the collection whose
  // cached results are now stale, or "" for everything. Wired to
  // srv::ResultCache by the embedder; the callback keeps this library
  // free of a server dependency. May be empty.
  std::function<void(const std::string&)> invalidate;
};

// Point-in-time view of the applier, for /statusz and tests.
struct ReplicaStatus {
  bool connected = false;
  bool caught_up = false;  // reached the primary's durable LSN at least once
  uint64_t applied_lsn = 0;
  uint64_t primary_durable_lsn = 0;
  uint64_t lag_records = 0;  // primary_durable_lsn - applied_lsn
  uint64_t last_msg_unix_ms = 0;
  uint64_t records_applied = 0;
  uint64_t bytes_received = 0;
  uint64_t snapshots_installed = 0;
  uint64_t reconnects = 0;
  uint64_t corrupt_frames = 0;
};

// Replica-side stream consumer. Owns one background thread that connects
// to the primary's ReplicationServer, bootstraps from a snapshot when
// cold, and applies shipped WAL records under the database's exclusive
// latch — exactly the discipline a local writer would follow, so replica
// reads through the normal query path need no extra coordination.
//
// Resilience: any stream damage (socket error, CRC mismatch, LSN gap)
// drops the connection; the applier reconnects with jittered exponential
// backoff and resumes from its last applied LSN, which the local WAL made
// durable — a replica restart recovers like a primary and carries on.
class ReplicaApplier {
 public:
  // `db` must outlive the applier and should be freshly opened (the
  // applier and query threads share its latch).
  ReplicaApplier(rel::Database* db, ReplicaApplierOptions options);
  ~ReplicaApplier();

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  common::Status Start();
  void Shutdown();

  uint64_t applied_lsn() const { return db_->applied_lsn(); }

  // Connected, has reached the primary's durable position at least once,
  // and heard from the primary within stale_after_ms. The /healthz
  // readiness bit for replicas.
  bool ready() const;

  ReplicaStatus status() const;

  // One JSON object for the /statusz "replication" section.
  std::string StatuszJson() const;

  // Blocks until the replica first reaches the primary's durable LSN;
  // Timeout on expiry. Orderly bring-up gate: call before opening the
  // warehouse / serving queries.
  common::Status WaitUntilCaughtUp(uint32_t timeout_ms);

  // Blocks until applied_lsn() >= lsn (the min_lsn read-your-writes wait);
  // false on timeout. Returns immediately when already satisfied.
  bool WaitForLsn(uint64_t lsn, uint32_t timeout_ms);

  // Test hook: while paused, received records are left in the socket and
  // nothing applies, freezing applied_lsn() so lag paths can be exercised
  // deterministically.
  void PauseApply(bool paused);

 private:
  void Run();
  common::Result<int> Connect();
  // Serves one connection until error/shutdown. Returns true when the
  // session ended due to Shutdown (stop retrying).
  bool StreamOnce(int fd);
  common::Status HandleSnapshot(const ReplMsg& msg);
  common::Status HandleRecord(const ReplMsg& msg);
  void NoteCaughtUpLocked();

  rel::Database* db_;
  ReplicaApplierOptions options_;

  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool paused_ = false;
  bool connected_ = false;
  bool caught_up_once_ = false;
  uint64_t primary_durable_lsn_ = 0;
  uint64_t last_msg_unix_ms_ = 0;
  uint64_t records_applied_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t snapshots_installed_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t corrupt_frames_ = 0;
  int fd_ = -1;  // current stream socket, for Shutdown() to poke
};

}  // namespace xomatiq::repl

#endif  // XOMATIQ_REPLICATION_REPLICA_H_
