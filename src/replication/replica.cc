#include "replication/replica.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "datahounds/generic_schema.h"
#include "server/protocol.h"

namespace xomatiq::repl {

using common::Result;
using common::Status;

namespace {

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

common::Gauge* LagRecordsGauge() {
  static common::Gauge* g =
      common::MetricsRegistry::Global().GetGauge("repl.lag_records");
  return g;
}

common::Gauge* LagMsGauge() {
  static common::Gauge* g =
      common::MetricsRegistry::Global().GetGauge("repl.lag_ms");
  return g;
}

// Everything the stream can fail with maps to "drop the connection and
// resume from the last applied LSN" — the same recovery a replica restart
// would perform.

}  // namespace

ReplicaApplier::ReplicaApplier(rel::Database* db,
                               ReplicaApplierOptions options)
    : db_(db), options_(std::move(options)) {}

ReplicaApplier::~ReplicaApplier() { Shutdown(); }

Status ReplicaApplier::Start() {
  if (options_.primary_port == 0) {
    return Status::InvalidArgument("replica needs a primary port");
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void ReplicaApplier::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      // Already asked to stop; just make sure the thread is reaped.
    }
    stopping_ = true;
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool ReplicaApplier::ready() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (!connected_ || !caught_up_once_) return false;
  uint64_t now = NowUnixMs();
  return now - last_msg_unix_ms_ <= options_.stale_after_ms;
}

ReplicaStatus ReplicaApplier::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  ReplicaStatus s;
  s.connected = connected_;
  s.caught_up = caught_up_once_;
  s.applied_lsn = db_->applied_lsn();
  s.primary_durable_lsn = primary_durable_lsn_;
  s.lag_records = s.primary_durable_lsn > s.applied_lsn
                      ? s.primary_durable_lsn - s.applied_lsn
                      : 0;
  s.last_msg_unix_ms = last_msg_unix_ms_;
  s.records_applied = records_applied_;
  s.bytes_received = bytes_received_;
  s.snapshots_installed = snapshots_installed_;
  s.reconnects = reconnects_;
  s.corrupt_frames = corrupt_frames_;
  return s;
}

std::string ReplicaApplier::StatuszJson() const {
  ReplicaStatus s = status();
  return common::StrFormat(
      "{\"role\":\"replica\",\"primary\":\"%s:%u\",\"connected\":%s,"
      "\"caught_up\":%s,\"applied_lsn\":%llu,\"primary_durable_lsn\":%llu,"
      "\"lag_records\":%llu,\"records_applied\":%llu,"
      "\"bytes_received\":%llu,\"snapshots_installed\":%llu,"
      "\"reconnects\":%llu,\"corrupt_frames\":%llu}",
      options_.primary_host.c_str(), options_.primary_port,
      s.connected ? "true" : "false", s.caught_up ? "true" : "false",
      static_cast<unsigned long long>(s.applied_lsn),
      static_cast<unsigned long long>(s.primary_durable_lsn),
      static_cast<unsigned long long>(s.lag_records),
      static_cast<unsigned long long>(s.records_applied),
      static_cast<unsigned long long>(s.bytes_received),
      static_cast<unsigned long long>(s.snapshots_installed),
      static_cast<unsigned long long>(s.reconnects),
      static_cast<unsigned long long>(s.corrupt_frames));
}

Status ReplicaApplier::WaitUntilCaughtUp(uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  bool ok = cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), [&] {
    return caught_up_once_ || stopping_;
  });
  if (!ok || !caught_up_once_) {
    return Status::Timeout("replica did not catch up within " +
                           std::to_string(timeout_ms) + "ms");
  }
  return Status::OK();
}

bool ReplicaApplier::WaitForLsn(uint64_t lsn, uint32_t timeout_ms) {
  if (db_->applied_lsn() >= lsn) return true;
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), [&] {
    return stopping_ || db_->applied_lsn() >= lsn;
  });
  return db_->applied_lsn() >= lsn;
}

void ReplicaApplier::PauseApply(bool paused) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = paused;
  }
  cv_.notify_all();
}

void ReplicaApplier::Run() {
  common::Backoff backoff(options_.reconnect);
  int attempt = 0;
  bool had_session = false;
  static common::Counter* reconnects_ctr =
      common::MetricsRegistry::Global().GetCounter("repl.reconnects");
  while (true) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) return;
    }
    Result<int> fd = Connect();
    if (!fd.ok()) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(lk, backoff.NextDelay(attempt++),
                   [&] { return stopping_; });
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) {
        ::close(*fd);
        return;
      }
      fd_ = *fd;
      connected_ = true;
      if (had_session) {
        ++reconnects_;
        reconnects_ctr->Inc();
      }
      had_session = true;
    }
    attempt = 0;
    bool stop = StreamOnce(*fd);
    {
      std::lock_guard<std::mutex> lk(mu_);
      connected_ = false;
      if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
    }
    cv_.notify_all();
    if (stop) return;
  }
}

Result<int> ReplicaApplier::Connect() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.primary_port);
  if (::inet_pton(AF_INET, options_.primary_host.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad primary address: " +
                                   options_.primary_host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st =
        Status::IoError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool ReplicaApplier::StreamOnce(int fd) {
  static common::Counter* corrupt_ctr =
      common::MetricsRegistry::Global().GetCounter("repl.corrupt_frames");
  auto is_stopping = [this] {
    std::lock_guard<std::mutex> lk(mu_);
    return stopping_;
  };

  ReplHello hello;
  hello.start_lsn = db_->applied_lsn();
  if (!srv::WriteFrame(fd, EncodeReplHello(hello)).ok()) {
    return is_stopping();
  }

  while (true) {
    if (is_stopping()) return true;
    Result<std::string> frame = srv::ReadFrame(fd, options_.max_frame_bytes);
    if (!frame.ok()) return is_stopping();
    Result<ReplMsg> msg = DecodeReplMsg(*frame);
    if (!msg.ok()) {
      // Damaged in flight; the record is still intact on the primary, so
      // resume from the last applied LSN over a fresh connection — the
      // stream-level twin of the WAL's torn-tail discard.
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++corrupt_frames_;
      }
      corrupt_ctr->Inc();
      return is_stopping();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      last_msg_unix_ms_ = NowUnixMs();
      bytes_received_ += frame->size() + 4;
    }
    switch (msg->type) {
      case ReplMsgType::kSnapshot:
        if (!HandleSnapshot(*msg).ok()) return is_stopping();
        break;
      case ReplMsgType::kRecord: {
        {
          std::unique_lock<std::mutex> lk(mu_);
          cv_.wait(lk, [&] { return !paused_ || stopping_; });
          if (stopping_) return true;
        }
        if (!HandleRecord(*msg).ok()) return is_stopping();
        break;
      }
      case ReplMsgType::kHeartbeat: {
        std::lock_guard<std::mutex> lk(mu_);
        primary_durable_lsn_ = std::max(primary_durable_lsn_, msg->lsn);
        NoteCaughtUpLocked();
        uint64_t applied = db_->applied_lsn();
        LagRecordsGauge()->Set(static_cast<int64_t>(
            primary_durable_lsn_ > applied ? primary_durable_lsn_ - applied
                                           : 0));
        if (applied >= primary_durable_lsn_) {
          LagMsGauge()->Set(
              static_cast<int64_t>(NowUnixMs() - msg->send_unix_ms));
        }
        cv_.notify_all();
        break;
      }
      case ReplMsgType::kError:
        // The primary refused us (version skew, divergent history).
        // Dropping the connection and retrying is all a replica can do.
        return is_stopping();
    }
  }
}

void ReplicaApplier::NoteCaughtUpLocked() {
  if (db_->applied_lsn() >= primary_durable_lsn_) caught_up_once_ = true;
}

Status ReplicaApplier::HandleSnapshot(const ReplMsg& msg) {
  static common::Counter* snapshots_ctr =
      common::MetricsRegistry::Global().GetCounter(
          "repl.snapshots_installed");
  static common::Histogram* install_hist =
      common::MetricsRegistry::Global().GetHistogram("repl.snapshot_install");
  {
    common::TraceSpan span("repl.snapshot_install", install_hist);
    // WriteGuard: the installed state publishes as one epoch; snapshot
    // readers on the replica flip atomically from old to new state.
    rel::WriteGuard guard(db_);
    XQ_RETURN_IF_ERROR(db_->InstallReplicaState(msg.payload).status());
  }
  if (options_.invalidate) options_.invalidate("");
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++snapshots_installed_;
    primary_durable_lsn_ = std::max(primary_durable_lsn_, msg.lsn);
    NoteCaughtUpLocked();
    LagRecordsGauge()->Set(0);
    LagMsGauge()->Set(static_cast<int64_t>(NowUnixMs() - msg.send_unix_ms));
  }
  snapshots_ctr->Inc();
  cv_.notify_all();
  return Status::OK();
}

Status ReplicaApplier::HandleRecord(const ReplMsg& msg) {
  static common::Counter* applied_ctr =
      common::MetricsRegistry::Global().GetCounter("repl.records_applied");
  static common::Histogram* apply_hist =
      common::MetricsRegistry::Global().GetHistogram("repl.apply");

  // Decide the cache invalidation before applying: a delete's collection
  // can only be read from the still-present row. nullopt = cache untouched,
  // "" = clear everything, otherwise the collection tag.
  std::optional<std::string> invalidation;
  Result<rel::Database::WalRecordSummary> summary =
      rel::Database::SummarizeWalRecord(msg.payload);
  {
    common::TraceSpan span("repl.apply", apply_hist);
    // WriteGuard: replica reads run under snapshots, so each applied
    // record becomes visible atomically on guard release — concurrent
    // with, never blocking, replica-side readers.
    rel::WriteGuard guard(db_);
    if (!summary.ok()) {
      invalidation = "";  // unknown record shape: evict everything
    } else if (summary->is_stats) {
      // ANALYZE output touches no data; cached results stay valid.
    } else if (summary->is_dml && summary->table == hounds::kDocumentTable) {
      // Document-table ops carry (or point at) the collection tag.
      if (summary->is_insert_or_update && summary->tuple &&
          summary->tuple->size() > 1 &&
          (*summary->tuple)[1].type() == rel::ValueType::kText) {
        invalidation = (*summary->tuple)[1].AsText();
      } else if (summary->has_row) {
        invalidation = "";
        if (Result<rel::Table*> table = db_->GetTable(summary->table);
            table.ok()) {
          if (Result<const rel::Tuple*> row = (*table)->Get(summary->row);
              row.ok() && (*row)->size() > 1 &&
              (**row)[1].type() == rel::ValueType::kText) {
            invalidation = (**row)[1].AsText();
          }
        }
      } else {
        invalidation = "";
      }
    } else {
      // Any other table (shredded node/text rows, user SQL tables) or DDL:
      // evict everything rather than reason about reachability.
      invalidation = "";
    }
    XQ_RETURN_IF_ERROR(db_->ApplyReplicated(msg.lsn, msg.payload));
  }
  if (invalidation && options_.invalidate) {
    options_.invalidate(*invalidation);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++records_applied_;
    primary_durable_lsn_ = std::max(primary_durable_lsn_, msg.lsn);
    NoteCaughtUpLocked();
    uint64_t applied = db_->applied_lsn();
    LagRecordsGauge()->Set(static_cast<int64_t>(
        primary_durable_lsn_ > applied ? primary_durable_lsn_ - applied
                                       : 0));
    LagMsGauge()->Set(static_cast<int64_t>(NowUnixMs() - msg.send_unix_ms));
  }
  applied_ctr->Inc();
  cv_.notify_all();
  return Status::OK();
}

}  // namespace xomatiq::repl
