#include "replication/repl_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "server/protocol.h"

namespace xomatiq::repl {

using common::Result;
using common::Status;

namespace {

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// How many tail records one ring pass hands to the socket before
// re-checking for shutdown / newer records.
constexpr size_t kShipBatch = 64;

}  // namespace

ReplicationServer::ReplicationServer(rel::Database* db,
                                     ReplicationServerOptions options)
    : db_(db), options_(std::move(options)) {}

ReplicationServer::~ReplicationServer() { Shutdown(); }

Status ReplicationServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad replication address: " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  // Attach the sink under the exclusive write latch: writers invoke it
  // while holding the same latch, so this is the only safe publication
  // point (WriteGuard publishes nothing here — no rows are stamped).
  {
    rel::WriteGuard guard(db_);
    db_->SetWalSink(
        [this](uint64_t lsn, std::string_view payload) {
          OnRecord(lsn, payload);
        });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ReplicationServer::Shutdown() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Unblock everything that could hold a latch or a lock before touching
  // the database: session threads may be mid-send under the shared latch,
  // and a stuck replica socket would otherwise park them there forever.
  ring_cv_.notify_all();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    rel::WriteGuard guard(db_);
    db_->SetWalSink(nullptr);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    threads.swap(session_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ReplicationServer::OnRecord(uint64_t lsn, std::string_view payload) {
  std::lock_guard<std::mutex> lk(ring_mu_);
  ring_.emplace_back(lsn, std::string(payload));
  ring_bytes_ += payload.size();
  while (ring_.size() > options_.ring_max_records ||
         (ring_bytes_ > options_.ring_max_bytes && ring_.size() > 1)) {
    ring_bytes_ -= ring_.front().second.size();
    ring_.pop_front();
  }
  ring_cv_.notify_all();
}

void ReplicationServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or unrecoverable)
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lk(sessions_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    session_fds_.push_back(fd);
    session_threads_.emplace_back([this, fd] { SessionLoop(fd); });
  }
}

namespace {

Status SendMsg(int fd, const ReplMsg& msg, std::atomic<uint64_t>* bytes) {
  std::string body = EncodeReplMsg(msg);
  // Damage-in-flight injection: flip the last byte after the CRC was
  // computed, so the replica's integrity check must catch it.
  if (!body.empty() &&
      common::FaultInjector::Global().ShouldFail("repl.ship.corrupt")) {
    body.back() = static_cast<char>(body.back() ^ 0xff);
  }
  Status st = srv::WriteFrame(fd, body);
  if (st.ok() && bytes != nullptr) {
    *bytes += body.size() + 4;
    static common::Counter* bytes_ctr =
        common::MetricsRegistry::Global().GetCounter("repl.bytes_shipped");
    bytes_ctr->Inc(body.size() + 4);
  }
  return st;
}

}  // namespace

Result<uint64_t> ReplicationServer::SendSnapshot(int fd) {
  ReplMsg msg;
  msg.type = ReplMsgType::kSnapshot;
  {
    // Shared latch blocks writers, so the encoded body is a consistent
    // cut at exactly the durable LSN read here.
    std::shared_lock<std::shared_mutex> lk(db_->latch());
    msg.lsn = db_->durable_lsn();
    msg.payload = db_->EncodeState();
  }
  msg.send_unix_ms = NowUnixMs();
  XQ_RETURN_IF_ERROR(SendMsg(fd, msg, &bytes_shipped_));
  snapshots_shipped_.fetch_add(1, std::memory_order_relaxed);
  static common::Counter* snapshots =
      common::MetricsRegistry::Global().GetCounter("repl.snapshots_shipped");
  snapshots->Inc();
  return msg.lsn;
}

void ReplicationServer::SessionLoop(int fd) {
  static common::Counter* records_ctr =
      common::MetricsRegistry::Global().GetCounter("repl.records_shipped");
  static common::Gauge* replicas_gauge =
      common::MetricsRegistry::Global().GetGauge("repl.replicas_connected");

  replicas_gauge->Set(static_cast<int64_t>(++replicas_connected_));

  // The replica opens with its hello; everything after that flows our way.
  bool hello_ok = false;
  uint64_t cursor = 0;
  if (Result<std::string> frame = srv::ReadFrame(fd, 4096); frame.ok()) {
    if (Result<ReplHello> hello = DecodeReplHello(*frame); hello.ok()) {
      if (hello->major == kReplMajor) {
        hello_ok = true;
        cursor = hello->start_lsn;
      } else {
        ReplMsg err;
        err.type = ReplMsgType::kError;
        err.send_unix_ms = NowUnixMs();
        err.payload = common::StrFormat(
            "unsupported replication protocol %u.%u (primary speaks %u.%u)",
            hello->major, hello->minor, kReplMajor, kReplMinor);
        (void)SendMsg(fd, err, nullptr);
      }
    }
  }

  if (hello_ok) {
    uint64_t durable = db_->durable_lsn();
    if (cursor > durable) {
      // The replica has records this primary never wrote (it is talking to
      // the wrong primary, or the primary lost its directory). Refuse
      // rather than ship a diverging stream.
      ReplMsg err;
      err.type = ReplMsgType::kError;
      err.lsn = durable;
      err.send_unix_ms = NowUnixMs();
      err.payload = common::StrFormat(
          "replica at lsn %llu is ahead of primary at lsn %llu",
          static_cast<unsigned long long>(cursor),
          static_cast<unsigned long long>(durable));
      (void)SendMsg(fd, err, nullptr);
      hello_ok = false;
    }
  }

  if (hello_ok) {
    bool need_snapshot;
    {
      std::lock_guard<std::mutex> lk(ring_mu_);
      need_snapshot = ring_.empty()
                          ? cursor < db_->durable_lsn()
                          : cursor + 1 < ring_.front().first;
    }
    if (need_snapshot) {
      if (Result<uint64_t> base = SendSnapshot(fd); base.ok()) {
        cursor = *base;
      } else {
        hello_ok = false;
      }
    }
  }

  auto last_send = std::chrono::steady_clock::now();
  std::vector<std::pair<uint64_t, std::string>> batch;
  while (hello_ok && !stopping_.load(std::memory_order_acquire)) {
    bool fell_behind = false;
    batch.clear();
    {
      std::unique_lock<std::mutex> lk(ring_mu_);
      ring_cv_.wait_for(
          lk, std::chrono::milliseconds(options_.heartbeat_ms), [&] {
            return stopping_.load(std::memory_order_acquire) ||
                   (!ring_.empty() && ring_.back().first > cursor);
          });
      if (stopping_.load(std::memory_order_acquire)) break;
      if (!ring_.empty() && ring_.back().first > cursor) {
        if (cursor + 1 < ring_.front().first) {
          // This replica is slower than the ring's retention: start over
          // from a fresh snapshot instead of erroring out.
          fell_behind = true;
        } else {
          for (const auto& [lsn, rec] : ring_) {
            if (lsn <= cursor) continue;
            batch.emplace_back(lsn, rec);
            if (batch.size() >= kShipBatch) break;
          }
        }
      }
    }
    if (fell_behind) {
      Result<uint64_t> base = SendSnapshot(fd);
      if (!base.ok()) break;
      cursor = *base;
      last_send = std::chrono::steady_clock::now();
      continue;
    }
    if (!batch.empty()) {
      bool write_failed = false;
      for (auto& [lsn, rec] : batch) {
        ReplMsg msg;
        msg.type = ReplMsgType::kRecord;
        msg.lsn = lsn;
        msg.send_unix_ms = NowUnixMs();
        msg.payload = std::move(rec);
        if (!SendMsg(fd, msg, &bytes_shipped_).ok()) {
          write_failed = true;
          break;
        }
        cursor = lsn;
        records_shipped_.fetch_add(1, std::memory_order_relaxed);
        records_ctr->Inc();
      }
      if (write_failed) break;
      last_send = std::chrono::steady_clock::now();
    } else {
      auto now = std::chrono::steady_clock::now();
      if (now - last_send >=
          std::chrono::milliseconds(options_.heartbeat_ms)) {
        ReplMsg hb;
        hb.type = ReplMsgType::kHeartbeat;
        hb.lsn = db_->durable_lsn();
        hb.send_unix_ms = NowUnixMs();
        if (!SendMsg(fd, hb, &bytes_shipped_).ok()) break;
        last_send = now;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    session_fds_.erase(
        std::remove(session_fds_.begin(), session_fds_.end(), fd),
        session_fds_.end());
    ::close(fd);
  }
  replicas_gauge->Set(static_cast<int64_t>(--replicas_connected_));
}

ReplicationServer::Stats ReplicationServer::stats() const {
  Stats s;
  s.replicas_connected = replicas_connected_.load(std::memory_order_relaxed);
  s.records_shipped = records_shipped_.load(std::memory_order_relaxed);
  s.bytes_shipped = bytes_shipped_.load(std::memory_order_relaxed);
  s.snapshots_shipped = snapshots_shipped_.load(std::memory_order_relaxed);
  s.durable_lsn = db_->durable_lsn();
  std::lock_guard<std::mutex> lk(ring_mu_);
  s.ring_records = ring_.size();
  s.ring_bytes = ring_bytes_;
  return s;
}

std::string ReplicationServer::StatuszJson() const {
  Stats s = stats();
  return common::StrFormat(
      "{\"role\":\"primary\",\"port\":%u,\"replicas_connected\":%zu,"
      "\"durable_lsn\":%llu,\"records_shipped\":%llu,"
      "\"bytes_shipped\":%llu,\"snapshots_shipped\":%llu,"
      "\"ring_records\":%zu,\"ring_bytes\":%zu}",
      port_, s.replicas_connected,
      static_cast<unsigned long long>(s.durable_lsn),
      static_cast<unsigned long long>(s.records_shipped),
      static_cast<unsigned long long>(s.bytes_shipped),
      static_cast<unsigned long long>(s.snapshots_shipped), s.ring_records,
      s.ring_bytes);
}

}  // namespace xomatiq::repl
