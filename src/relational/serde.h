#ifndef XOMATIQ_RELATIONAL_SERDE_H_
#define XOMATIQ_RELATIONAL_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace xomatiq::rel {

// Append-only binary encoder for WAL records and snapshots. Integers are
// little-endian fixed width; strings are u32-length-prefixed.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(std::string_view s);

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Bounds-checked decoder; every getter returns Corruption on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  common::Result<uint8_t> GetU8();
  common::Result<uint32_t> GetU32();
  common::Result<uint64_t> GetU64();
  common::Result<int64_t> GetI64();
  common::Result<double> GetDouble();
  common::Result<std::string> GetString();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

void EncodeValue(const Value& v, BinaryWriter* w);
common::Result<Value> DecodeValue(BinaryReader* r);

void EncodeTuple(const Tuple& t, BinaryWriter* w);
common::Result<Tuple> DecodeTuple(BinaryReader* r);

void EncodeSchema(const Schema& s, BinaryWriter* w);
common::Result<Schema> DecodeSchema(BinaryReader* r);

// CRC32-C (Castagnoli polynomial) used to frame WAL records and
// snapshots; hardware-accelerated where SSE4.2 is available.
uint32_t Crc32(std::string_view data);

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_SERDE_H_
