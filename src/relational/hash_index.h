#ifndef XOMATIQ_RELATIONAL_HASH_INDEX_H_
#define XOMATIQ_RELATIONAL_HASH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "relational/btree_index.h"
#include "relational/value.h"

namespace xomatiq::rel {

// Unordered equality index: CompositeKey -> posting list. Point lookups
// only; the planner picks it for equality predicates when no ordered scan
// is needed.
class HashIndex {
 public:
  HashIndex() = default;

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  void Insert(const CompositeKey& key, RowId row) {
    map_[key].push_back(row);
    ++num_entries_;
  }

  // Removes (key,row); returns true when present.
  bool Erase(const CompositeKey& key, RowId row);

  // Rows whose key equals `key` (empty when absent).
  const std::vector<RowId>* Lookup(const CompositeKey& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t num_keys() const { return map_.size(); }
  size_t num_entries() const { return num_entries_; }

 private:
  std::unordered_map<CompositeKey, std::vector<RowId>, CompositeKeyHasher,
                     CompositeKeyEq>
      map_;
  size_t num_entries_ = 0;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_HASH_INDEX_H_
