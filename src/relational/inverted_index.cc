#include "relational/inverted_index.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/string_util.h"

namespace xomatiq::rel {

namespace {

common::Counter* PostingsScannedCounter() {
  static common::Counter* c = common::MetricsRegistry::Global().GetCounter(
      "rel.inverted.postings_scanned");
  return c;
}

}  // namespace

void InvertedIndex::Add(RowId row, std::string_view text) {
  for (const std::string& token : common::TokenizeKeywords(text)) {
    std::vector<RowId>& rows = postings_[token];
    // Keep the posting list sorted; appends are usually at the tail since
    // row-ids grow monotonically during a load.
    auto it = std::lower_bound(rows.begin(), rows.end(), row);
    if (it != rows.end() && *it == row) continue;  // token repeats in text
    rows.insert(it, row);
    ++num_postings_;
  }
}

void InvertedIndex::Remove(RowId row, std::string_view text) {
  for (const std::string& token : common::TokenizeKeywords(text)) {
    auto pit = postings_.find(token);
    if (pit == postings_.end()) continue;
    auto it = std::lower_bound(pit->second.begin(), pit->second.end(), row);
    if (it != pit->second.end() && *it == row) {
      pit->second.erase(it);
      --num_postings_;
      if (pit->second.empty()) postings_.erase(pit);
    }
  }
}

std::vector<RowId> InvertedIndex::Lookup(std::string_view token) const {
  std::vector<std::string> tokens = common::TokenizeKeywords(token);
  if (tokens.size() == 1) {
    auto it = postings_.find(tokens[0]);
    if (it == postings_.end()) return {};
    PostingsScannedCounter()->Inc(it->second.size());
    return it->second;
  }
  return LookupAll(token);
}

std::vector<RowId> InvertedIndex::LookupAll(std::string_view phrase) const {
  std::vector<std::string> tokens = common::TokenizeKeywords(phrase);
  if (tokens.empty()) return {};
  std::vector<RowId> acc;
  bool first = true;
  for (const std::string& token : tokens) {
    auto it = postings_.find(token);
    if (it == postings_.end()) return {};
    PostingsScannedCounter()->Inc(it->second.size());
    if (first) {
      acc = it->second;
      first = false;
      continue;
    }
    std::vector<RowId> merged;
    std::set_intersection(acc.begin(), acc.end(), it->second.begin(),
                          it->second.end(), std::back_inserter(merged));
    acc = std::move(merged);
    if (acc.empty()) return {};
  }
  return acc;
}

}  // namespace xomatiq::rel
