#include "relational/btree_index.h"

#include <algorithm>
#include <cassert>

#include "common/metrics.h"

namespace xomatiq::rel {

namespace {

bool KeyLess(const CompositeKey& a, const CompositeKey& b) {
  return CompareCompositeKeys(a, b) < 0;
}

common::Counter* LeafSplitCounter() {
  static common::Counter* c =
      common::MetricsRegistry::Global().GetCounter("rel.btree.leaf_splits");
  return c;
}

common::Counter* InternalSplitCounter() {
  static common::Counter* c = common::MetricsRegistry::Global().GetCounter(
      "rel.btree.internal_splits");
  return c;
}

}  // namespace

struct BTreeIndex::LeafEntry {
  CompositeKey key;
  std::vector<RowId> rows;
};

struct BTreeIndex::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}

  bool is_leaf;
  Node* parent = nullptr;

  // Leaf payload.
  std::vector<LeafEntry> entries;
  Node* next = nullptr;

  // Internal payload: children.size() == keys.size() + 1. Keys in
  // children[i] satisfy keys[i-1] <= k < keys[i].
  std::vector<CompositeKey> keys;
  std::vector<std::unique_ptr<Node>> children;
};

BTreeIndex::BTreeIndex(size_t fanout) : fanout_(std::max<size_t>(4, fanout)) {
  root_owner_ = std::make_unique<Node>(/*leaf=*/true);
  root_ = root_owner_.get();
}

BTreeIndex::~BTreeIndex() = default;

BTreeIndex::Node* BTreeIndex::FindLeaf(const CompositeKey& key) const {
  Node* node = root_;
  while (!node->is_leaf) {
    size_t i = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key, KeyLess) -
        node->keys.begin());
    node = node->children[i].get();
  }
  return node;
}

void BTreeIndex::Insert(const CompositeKey& key, RowId row) {
  Node* leaf = FindLeaf(key);
  InsertIntoLeaf(leaf, key, row);
}

void BTreeIndex::InsertIntoLeaf(Node* leaf, const CompositeKey& key,
                                RowId row) {
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafEntry& e, const CompositeKey& k) { return KeyLess(e.key, k); });
  if (it != leaf->entries.end() && CompareCompositeKeys(it->key, key) == 0) {
    it->rows.push_back(row);
    ++num_entries_;
    return;
  }
  LeafEntry entry;
  entry.key = key;
  entry.rows.push_back(row);
  leaf->entries.insert(it, std::move(entry));
  ++num_keys_;
  ++num_entries_;
  if (leaf->entries.size() > fanout_) SplitLeaf(leaf);
}

void BTreeIndex::SplitLeaf(Node* leaf) {
  LeafSplitCounter()->Inc();
  auto right = std::make_unique<Node>(/*leaf=*/true);
  size_t mid = leaf->entries.size() / 2;
  right->entries.assign(std::make_move_iterator(leaf->entries.begin() + mid),
                        std::make_move_iterator(leaf->entries.end()));
  leaf->entries.resize(mid);
  right->next = leaf->next;
  Node* right_raw = right.get();
  CompositeKey sep = right->entries.front().key;
  // InsertIntoParent takes ownership of `right`.
  leaf->next = right_raw;
  right.release();
  InsertIntoParent(leaf, std::move(sep), right_raw);
}

void BTreeIndex::InsertIntoParent(Node* left, CompositeKey sep, Node* right) {
  std::unique_ptr<Node> right_owned(right);
  if (left == root_) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->keys.push_back(std::move(sep));
    left->parent = new_root.get();
    right->parent = new_root.get();
    new_root->children.push_back(std::move(root_owner_));
    new_root->children.push_back(std::move(right_owned));
    root_owner_ = std::move(new_root);
    root_ = root_owner_.get();
    return;
  }
  Node* parent = left->parent;
  // Locate left among parent's children.
  size_t i = 0;
  while (i < parent->children.size() && parent->children[i].get() != left) ++i;
  assert(i < parent->children.size());
  parent->keys.insert(parent->keys.begin() + i, std::move(sep));
  right->parent = parent;
  parent->children.insert(parent->children.begin() + i + 1,
                          std::move(right_owned));
  if (parent->keys.size() > fanout_) SplitInternal(parent);
}

void BTreeIndex::SplitInternal(Node* node) {
  InternalSplitCounter()->Inc();
  size_t mid = node->keys.size() / 2;
  CompositeKey sep = std::move(node->keys[mid]);
  auto right = std::make_unique<Node>(/*leaf=*/false);
  right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                     std::make_move_iterator(node->keys.end()));
  right->children.assign(
      std::make_move_iterator(node->children.begin() + mid + 1),
      std::make_move_iterator(node->children.end()));
  for (auto& child : right->children) child->parent = right.get();
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  Node* right_raw = right.release();
  InsertIntoParent(node, std::move(sep), right_raw);
}

bool BTreeIndex::Erase(const CompositeKey& key, RowId row) {
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafEntry& e, const CompositeKey& k) { return KeyLess(e.key, k); });
  if (it == leaf->entries.end() || CompareCompositeKeys(it->key, key) != 0) {
    return false;
  }
  auto rit = std::find(it->rows.begin(), it->rows.end(), row);
  if (rit == it->rows.end()) return false;
  it->rows.erase(rit);
  --num_entries_;
  if (it->rows.empty()) {
    leaf->entries.erase(it);
    --num_keys_;
  }
  return true;
}

std::vector<RowId> BTreeIndex::Lookup(const CompositeKey& key) const {
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafEntry& e, const CompositeKey& k) { return KeyLess(e.key, k); });
  if (it == leaf->entries.end() || CompareCompositeKeys(it->key, key) != 0) {
    return {};
  }
  return it->rows;
}

void BTreeIndex::Scan(
    const std::optional<Bound>& lo, const std::optional<Bound>& hi,
    const std::function<bool(const CompositeKey&, const std::vector<RowId>&)>&
        visit) const {
  Node* leaf;
  size_t pos = 0;
  if (lo.has_value()) {
    leaf = FindLeaf(lo->key);
    pos = static_cast<size_t>(
        std::lower_bound(leaf->entries.begin(), leaf->entries.end(), lo->key,
                         [](const LeafEntry& e, const CompositeKey& k) {
                           return KeyLess(e.key, k);
                         }) -
        leaf->entries.begin());
    if (!lo->inclusive && pos < leaf->entries.size() &&
        CompareCompositeKeys(leaf->entries[pos].key, lo->key) == 0) {
      ++pos;
    }
  } else {
    leaf = root_;
    while (!leaf->is_leaf) leaf = leaf->children.front().get();
  }
  while (leaf != nullptr) {
    for (; pos < leaf->entries.size(); ++pos) {
      const LeafEntry& e = leaf->entries[pos];
      if (hi.has_value()) {
        int c = CompareCompositeKeys(e.key, hi->key);
        if (c > 0 || (c == 0 && !hi->inclusive)) return;
      }
      if (!visit(e.key, e.rows)) return;
    }
    leaf = leaf->next;
    pos = 0;
  }
}

void BTreeIndex::ScanPrefix(
    const CompositeKey& prefix,
    const std::function<bool(const CompositeKey&, const std::vector<RowId>&)>&
        visit) const {
  Bound lo{prefix, /*inclusive=*/true};
  Scan(lo, std::nullopt,
       [&](const CompositeKey& key, const std::vector<RowId>& rows) {
         if (key.size() < prefix.size()) return false;
         for (size_t i = 0; i < prefix.size(); ++i) {
           if (Value::Compare(key[i], prefix[i]) != 0) return false;
         }
         return visit(key, rows);
       });
}

size_t BTreeIndex::Height() const {
  size_t h = 1;
  Node* node = root_;
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

bool BTreeIndex::CheckInvariants() const {
  if (!CheckNodeInvariants(root_, nullptr, nullptr)) return false;
  // Leaf chain must be globally sorted.
  Node* leaf = root_;
  while (!leaf->is_leaf) leaf = leaf->children.front().get();
  const CompositeKey* prev = nullptr;
  while (leaf != nullptr) {
    for (const LeafEntry& e : leaf->entries) {
      if (prev != nullptr && CompareCompositeKeys(*prev, e.key) >= 0) {
        return false;
      }
      prev = &e.key;
    }
    leaf = leaf->next;
  }
  return true;
}

// Recursively checks subtree key bounds; lo/hi may be null (unbounded).
bool BTreeIndex::CheckNodeInvariants(const Node* node, const CompositeKey* lo,
                                     const CompositeKey* hi) const {
  if (node->is_leaf) {
    for (const auto& e : node->entries) {
      if (lo != nullptr && CompareCompositeKeys(e.key, *lo) < 0) return false;
      if (hi != nullptr && CompareCompositeKeys(e.key, *hi) >= 0) return false;
    }
    return true;
  }
  if (node->children.size() != node->keys.size() + 1) return false;
  for (size_t i = 1; i < node->keys.size(); ++i) {
    if (CompareCompositeKeys(node->keys[i - 1], node->keys[i]) >= 0) {
      return false;
    }
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const CompositeKey* child_lo = i == 0 ? lo : &node->keys[i - 1];
    const CompositeKey* child_hi = i == node->keys.size() ? hi : &node->keys[i];
    if (node->children[i]->parent != node) return false;
    if (!CheckNodeInvariants(node->children[i].get(), child_lo, child_hi)) {
      return false;
    }
  }
  return true;
}

}  // namespace xomatiq::rel
