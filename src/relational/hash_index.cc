#include "relational/hash_index.h"

#include <algorithm>

namespace xomatiq::rel {

bool HashIndex::Erase(const CompositeKey& key, RowId row) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  auto rit = std::find(it->second.begin(), it->second.end(), row);
  if (rit == it->second.end()) return false;
  it->second.erase(rit);
  --num_entries_;
  if (it->second.empty()) map_.erase(it);
  return true;
}

}  // namespace xomatiq::rel
