#ifndef XOMATIQ_RELATIONAL_ROW_BATCH_H_
#define XOMATIQ_RELATIONAL_ROW_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "relational/btree_index.h"
#include "relational/schema.h"

namespace xomatiq::rel {

// Fixed-capacity batch of rows flowing between executor operators, with a
// selection mask. Rows are stored as tuple pointers so a scan batch can
// reference table storage directly (zero copy); operators that synthesize
// rows (project, joins, aggregate) append owned tuples instead. Filters
// narrow the selection in place, so a batch crosses a predicate chain
// without moving a single tuple.
//
// Owned storage is reserved up front and never exceeds `capacity`, so row
// pointers into it stay valid for the lifetime of the batch (including
// after a move).
class RowBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit RowBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    rows_.reserve(capacity_);
    row_ids_.reserve(capacity_);
    sel_.reserve(capacity_);
    owned_index_.reserve(capacity_);
    owned_.reserve(capacity_);
  }

  RowBatch(RowBatch&&) = default;
  RowBatch& operator=(RowBatch&&) = default;
  RowBatch(const RowBatch&) = delete;
  RowBatch& operator=(const RowBatch&) = delete;

  size_t capacity() const { return capacity_; }
  // Number of selected (live) rows.
  size_t size() const { return sel_.size(); }
  bool empty() const { return sel_.empty(); }
  // True when no more rows can be appended.
  bool full() const { return rows_.size() >= capacity_; }

  // Appends a row that outlives the batch (e.g. table storage). The new
  // row is selected.
  void AppendRef(const Tuple* row, RowId row_id) {
    sel_.push_back(static_cast<uint32_t>(rows_.size()));
    rows_.push_back(row);
    row_ids_.push_back(row_id);
    owned_index_.push_back(-1);
  }

  // Appends a synthesized row; the batch owns it. The new row is selected.
  void AppendOwned(Tuple row, RowId row_id = 0) {
    owned_.push_back(std::move(row));
    AppendRef(&owned_.back(), row_id);
    owned_index_.back() = static_cast<int32_t>(owned_.size() - 1);
  }

  // i-th selected row / its RowId (scan provenance; 0 for synthesized).
  const Tuple& row(size_t i) const { return *rows_[sel_[i]]; }
  RowId row_id(size_t i) const { return row_ids_[sel_[i]]; }

  // Takes the i-th selected row: moves it out when the batch owns it,
  // copies when it references external storage. Only for consumers that
  // drop or Clear() the batch before reading that row again.
  Tuple StealRow(size_t i) {
    int32_t o = owned_index_[sel_[i]];
    if (o >= 0) return std::move(owned_[static_cast<size_t>(o)]);
    return *rows_[sel_[i]];
  }

  // Selection mask: ordered physical positions of the live rows.
  const std::vector<uint32_t>& sel() const { return sel_; }

  // Replaces the selection with `sel`, which must be an ordered subset of
  // the current selection (as a filter produces).
  void SetSel(std::vector<uint32_t> sel) { sel_ = std::move(sel); }

  // Keeps only the selected rows whose index i has keep[i] true.
  void Retain(const std::vector<char>& keep) {
    std::vector<uint32_t> next;
    next.reserve(sel_.size());
    for (size_t i = 0; i < sel_.size(); ++i) {
      if (keep[i]) next.push_back(sel_[i]);
    }
    sel_ = std::move(next);
  }

  // Drops the first `n` selected rows (LIMIT ... OFFSET).
  void DropFront(size_t n) {
    if (n >= sel_.size()) {
      sel_.clear();
      return;
    }
    sel_.erase(sel_.begin(), sel_.begin() + static_cast<ptrdiff_t>(n));
  }

  // Keeps only the first `n` selected rows (LIMIT).
  void Truncate(size_t n) {
    if (n < sel_.size()) sel_.resize(n);
  }

  // Empties the batch for reuse; keeps reserved storage.
  void Clear() {
    rows_.clear();
    row_ids_.clear();
    sel_.clear();
    owned_.clear();
    owned_index_.clear();
  }

 private:
  size_t capacity_;
  std::vector<const Tuple*> rows_;
  std::vector<RowId> row_ids_;
  std::vector<uint32_t> sel_;
  // Physical position -> index into owned_, or -1 for referenced rows.
  std::vector<int32_t> owned_index_;
  std::vector<Tuple> owned_;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_ROW_BATCH_H_
