#ifndef XOMATIQ_RELATIONAL_DATABASE_H_
#define XOMATIQ_RELATIONAL_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "relational/btree_index.h"
#include "relational/hash_index.h"
#include "relational/inverted_index.h"
#include "relational/stats.h"
#include "relational/table.h"
#include "relational/wal.h"

namespace xomatiq::rel {

class BinaryReader;
class BinaryWriter;

enum class IndexKind : uint8_t {
  kBTree = 0,    // ordered; equality, range and prefix scans
  kHash = 1,     // equality only
  kInverted = 2, // keyword postings over one TEXT column
};

std::string_view IndexKindName(IndexKind kind);

// Declarative index description (persisted in snapshots / WAL).
struct IndexDef {
  std::string name;
  std::string table;
  std::vector<std::string> columns;  // exactly one for kInverted
  IndexKind kind = IndexKind::kBTree;
  bool unique = false;  // enforced for kBTree / kHash
};

// A built index attached to a table.
struct IndexEntry {
  IndexDef def;
  std::vector<size_t> column_indexes;
  std::unique_ptr<BTreeIndex> btree;
  std::unique_ptr<HashIndex> hash;
  std::unique_ptr<InvertedIndex> inverted;
};

// Embedded relational database: catalog of heap tables plus secondary
// indexes, with write-ahead logging and snapshot checkpointing when opened
// against a directory.
//
// Concurrency model (see DESIGN.md "Service layer"): the database carries a
// single statement-level reader/writer latch, exposed via latch(). The
// database's own methods deliberately do NOT acquire it — composite
// operations (a warehouse sync issuing thousands of Inserts, the engine
// binding a plan then scanning) must be covered by ONE acquisition at the
// statement boundary, and self-locking here would deadlock them. The
// locking rules are:
//   - sql::SqlEngine takes latch() shared for SELECT / EXPLAIN and
//     exclusive for DML / DDL, for the full parse-free statement lifetime;
//   - hounds::Warehouse takes latch() exclusive across LoadSource /
//     SyncSource / LoadDocument / RemoveDocument and shared across its
//     catalog reads;
//   - any other caller that shares a Database across threads must follow
//     the same discipline: hold the latch shared for as long as it uses a
//     Table* / IndexEntry* obtained from the catalog, exclusive around any
//     mutation. Single-threaded embedded use needs no locking at all.
class Database {
 public:
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  struct DbOptions {
    WalOptions wal;
  };

  // Volatile database (no WAL, no snapshots).
  static std::unique_ptr<Database> OpenInMemory();

  // Durable database rooted at directory `dir` (created if missing).
  // Recovers state from `dir`/snapshot.db plus `dir`/wal.log; a torn or
  // corrupt WAL tail is discarded (counted in rel.wal.torn_tail_discarded
  // and reflected by recovered_torn_tail()). Fault-injection points:
  // db.recovery.record (per replayed record), db.snapshot.write,
  // db.snapshot.rename.
  static common::Result<std::unique_ptr<Database>> Open(
      const std::string& dir, DbOptions options = {});

  // --- DDL ---
  common::Status CreateTable(const std::string& name, Schema schema);
  common::Status DropTable(const std::string& name);
  common::Status CreateIndex(const IndexDef& def);
  common::Status DropIndex(const std::string& index_name);

  // --- DML (index-maintaining, logged) ---
  common::Result<RowId> Insert(const std::string& table, Tuple tuple);
  common::Status Delete(const std::string& table, RowId row);
  common::Status Update(const std::string& table, RowId row, Tuple tuple);

  // --- lookup ---
  common::Result<Table*> GetTable(const std::string& name);
  common::Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  std::vector<std::string> TableNames() const;

  // Indexes attached to `table` (empty when table unknown).
  const std::vector<std::unique_ptr<IndexEntry>>* IndexesOn(
      const std::string& table) const;

  // Finds an index on `table` whose column list starts with `columns`
  // (exact order) and matches `kind`; nullptr when absent.
  const IndexEntry* FindIndex(const std::string& table,
                              const std::vector<std::string>& columns,
                              IndexKind kind) const;
  const IndexEntry* FindIndexByName(const std::string& index_name) const;

  // --- statistics (cost-based planning) ---
  // Collects per-table row counts and per-column NDV / min-max /
  // null-fraction sketches with one full scan, stores them in the catalog
  // and logs them to the WAL (they survive restarts like any other catalog
  // state). Resets the table's staleness counter.
  common::Status Analyze(const std::string& table);

  // Catalog statistics for `table`; nullptr when never analyzed (or the
  // table is unknown). Pointer valid while the latch is held and the table
  // is not re-analyzed/dropped.
  const TableStats* StatsFor(const std::string& table) const;

  // Rows inserted/deleted/updated since the last ANALYZE of `table`
  // (0 when never analyzed — staleness is moot without stats).
  uint64_t MutationsSinceAnalyze(const std::string& table) const;

  // --- durability ---
  // Writes a full snapshot and truncates the WAL. No-op for in-memory DBs.
  common::Status Checkpoint();

  bool durable() const { return wal_ != nullptr; }
  uint64_t wal_bytes() const { return wal_ ? wal_->bytes_written() : 0; }
  size_t records_recovered() const { return records_recovered_; }
  // True when Open discarded a torn/corrupt WAL tail during recovery.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }

  // --- log sequence numbers (replication) ---
  // Every logged record carries a monotonic LSN; recovery restores the
  // counter to (snapshot base + records replayed), so numbering is stable
  // across restarts and checkpoints. Under the apply-then-log discipline
  // the two views coincide by construction: a record is applied and made
  // durable inside one exclusive latch acquisition.
  //
  // LSN of the last record applied to the in-memory state. On a replica
  // this is the replication position to resume from.
  uint64_t applied_lsn() const {
    return last_lsn_.load(std::memory_order_acquire);
  }
  // LSN of the last record made durable in the local WAL (for volatile
  // databases the in-memory apply is the commit point, so the same
  // counter serves).
  uint64_t durable_lsn() const {
    return last_lsn_.load(std::memory_order_acquire);
  }

  // Observer for freshly logged records, invoked as (lsn, payload) after
  // each successful Log while the writer still holds the statement latch
  // exclusively. The sink must be cheap and non-blocking (the replication
  // server's sink copies the record into its ring and signals a condvar);
  // it must not call back into the database. Pass nullptr to detach.
  using WalSink = std::function<void(uint64_t, std::string_view)>;
  void SetWalSink(WalSink sink) { wal_sink_ = std::move(sink); }

  // --- replication (caller holds latch() exclusively) ---
  // Serialized full state (same body a snapshot stores, including the
  // current LSN) for bootstrapping a cold replica. Caller holds latch()
  // at least shared, which blocks writers, so the body is a consistent
  // cut at exactly applied_lsn().
  std::string EncodeState() const;

  // Replaces this database's entire state with a primary's EncodeState()
  // body; returns the embedded base LSN. Durable replicas checkpoint
  // immediately so a restart resumes from the installed state instead of
  // a stale local snapshot. On failure the catalog may be left empty —
  // the applier discards the connection and re-bootstraps.
  common::Result<uint64_t> InstallReplicaState(std::string_view state_body);

  // Applies one shipped WAL record, which must carry exactly
  // applied_lsn() + 1 (gaps mean a broken stream and return Corruption).
  // The record is re-logged to the local WAL, so a replica's directory
  // recovers like a primary's.
  common::Status ApplyReplicated(uint64_t lsn, std::string_view payload);

  // Decoded header of one WAL record, for observers that must know what a
  // record touches without applying it (the replica applier maps shipped
  // records to result-cache invalidations this way).
  struct WalRecordSummary {
    bool is_dml = false;              // insert / delete / update
    bool is_insert_or_update = false; // `tuple` holds the stored row
    bool is_stats = false;            // ANALYZE output; touches no data
    std::string table;                // empty when no single table applies
    std::optional<Tuple> tuple;
    RowId row = 0;                    // valid when has_row
    bool has_row = false;             // delete / update carry a row id
  };
  static common::Result<WalRecordSummary> SummarizeWalRecord(
      std::string_view payload);

  // --- concurrency ---
  // Statement-level reader/writer latch; see the class comment for who
  // acquires it and when. Returned reference is valid for the database's
  // lifetime.
  std::shared_mutex& latch() const { return latch_; }

  // --- observability ---
  // Point-in-time copy of the process metrics registry (engine counters,
  // WAL/index/recovery counters, stage latency histograms). The registry
  // is process-global; this accessor is the stable API surface callers
  // and benches go through.
  static common::MetricsSnapshot MetricsSnapshot();

 private:
  struct TableInfo {
    std::unique_ptr<Table> table;
    std::vector<std::unique_ptr<IndexEntry>> indexes;
    // ANALYZE output; nullopt until the table is first analyzed.
    std::optional<TableStats> stats;
    // Mutations applied since `stats` was collected; the planner treats
    // stats as stale past a threshold and falls back to rule-based plans.
    uint64_t mutations_since_analyze = 0;
  };

  Database() = default;

  common::Status CreateTableInternal(const std::string& name, Schema schema);
  common::Status DropTableInternal(const std::string& name);
  common::Status CreateIndexInternal(const IndexDef& def);
  common::Status DropIndexInternal(const std::string& index_name);
  common::Result<RowId> InsertInternal(const std::string& table, Tuple tuple);
  common::Status DeleteInternal(const std::string& table, RowId row);
  common::Status UpdateInternal(const std::string& table, RowId row,
                                Tuple tuple);
  common::Status SetStatsInternal(const std::string& table, TableStats stats);

  common::Status Log(std::string_view payload);
  common::Status ReplayRecord(std::string_view payload);
  common::Status LoadSnapshot(const std::string& path);
  common::Status WriteSnapshot(const std::string& path) const;
  // Shared body serde: snapshots and replication bootstrap use one
  // format. `has_lsn` distinguishes the v2 layout (leading u64 base LSN)
  // from legacy v1 snapshots; *base_lsn receives the embedded value.
  void EncodeStateBody(BinaryWriter* body) const;
  common::Status DecodeStateBody(BinaryReader* r, bool has_lsn,
                                 uint64_t* base_lsn);
  void PublishLsn(uint64_t lsn);

  static common::Status BuildIndex(const Table& table, IndexEntry* entry);
  common::Status IndexInsert(TableInfo* info, RowId row, const Tuple& tuple);
  void IndexErase(TableInfo* info, RowId row, const Tuple& tuple);

  mutable std::shared_mutex latch_;
  std::map<std::string, TableInfo> tables_;
  std::string dir_;
  std::unique_ptr<WriteAheadLog> wal_;
  size_t records_recovered_ = 0;
  bool recovered_torn_tail_ = false;
  bool replaying_ = false;
  // Atomic so the service layer can stamp responses with the commit LSN
  // without taking the latch; mutations happen under the exclusive latch.
  std::atomic<uint64_t> last_lsn_{0};
  WalSink wal_sink_;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_DATABASE_H_
