#ifndef XOMATIQ_RELATIONAL_DATABASE_H_
#define XOMATIQ_RELATIONAL_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "relational/btree_index.h"
#include "relational/hash_index.h"
#include "relational/inverted_index.h"
#include "relational/snapshot.h"
#include "relational/stats.h"
#include "relational/table.h"
#include "relational/wal.h"

namespace xomatiq::rel {

class BinaryReader;
class BinaryWriter;

enum class IndexKind : uint8_t {
  kBTree = 0,    // ordered; equality, range and prefix scans
  kHash = 1,     // equality only
  kInverted = 2, // keyword postings over one TEXT column
};

std::string_view IndexKindName(IndexKind kind);

// Declarative index description (persisted in snapshots / WAL).
struct IndexDef {
  std::string name;
  std::string table;
  std::vector<std::string> columns;  // exactly one for kInverted
  IndexKind kind = IndexKind::kBTree;
  bool unique = false;  // enforced for kBTree / kHash
};

// A built index attached to a table. Unlike the heap (versioned, latch
// free), index structures are single-version: `latch` serializes probes
// against maintenance — writers take it exclusive per index operation,
// snapshot readers take it shared per probe and re-check both visibility
// and the probed predicate against the heap tuple (an index only knows
// the latest keys; see DESIGN.md "Concurrency & snapshots").
struct IndexEntry {
  IndexDef def;
  std::vector<size_t> column_indexes;
  std::unique_ptr<BTreeIndex> btree;
  std::unique_ptr<HashIndex> hash;
  std::unique_ptr<InvertedIndex> inverted;
  mutable std::shared_mutex latch;
};

// Embedded relational database: catalog of heap tables plus secondary
// indexes, with write-ahead logging and snapshot checkpointing when opened
// against a directory.
//
// Concurrency model (MVCC-lite; see DESIGN.md "Concurrency & snapshots"):
//
//   - Writers serialize among THEMSELVES on latch(), the write latch.
//     Take it through rel::WriteGuard, which publishes the batch's epoch
//     on release: every row stamped inside one guard becomes visible to
//     new snapshots atomically. The database's own mutators deliberately
//     do NOT acquire the latch — composite operations (a warehouse sync
//     issuing thousands of Inserts, the engine running one DML
//     statement) must share ONE guard so they commit as one batch.
//     Convenience: a mutator called with no guard active commits itself
//     as a single-op batch, so single-threaded embedded use needs no
//     locking at all.
//   - Readers never touch latch(). BeginSnapshot() pins a committed
//     epoch; all reads made at that epoch (Table::Get/Scan, executor,
//     index probes) are latch-free and see a consistent cut, fully
//     concurrent with any writer.
//   - Catalog-shape DDL additionally waits on the snapshot barrier (all
//     live snapshots released) before mutating the table/index catalog,
//     so a snapshot's Table*/IndexEntry* pointers stay valid for its
//     lifetime.
//   - Superseded versions are reclaimed on guard release once no live
//     snapshot can see them (low-water mark over the snapshot registry);
//     the actual frees are deferred one step further so readers already
//     inside a chain are never pulled down.
class Database {
 public:
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  struct DbOptions {
    WalOptions wal;
  };

  // Volatile database (no WAL, no snapshots).
  static std::unique_ptr<Database> OpenInMemory();

  // Durable database rooted at directory `dir` (created if missing).
  // Recovers state from `dir`/snapshot.db plus `dir`/wal.log; a torn or
  // corrupt WAL tail is discarded (counted in rel.wal.torn_tail_discarded
  // and reflected by recovered_torn_tail()). Fault-injection points:
  // db.recovery.record (per replayed record), db.snapshot.write,
  // db.snapshot.rename. The WAL carries no epochs: recovery stamps every
  // restored row with epoch 1 and opens at committed epoch 1, so a
  // snapshot taken right after Open sees exactly the recovered state.
  static common::Result<std::unique_ptr<Database>> Open(
      const std::string& dir, DbOptions options = {});

  // --- DDL (each op takes the snapshot barrier internally) ---
  common::Status CreateTable(const std::string& name, Schema schema);
  common::Status DropTable(const std::string& name);
  common::Status CreateIndex(const IndexDef& def);
  common::Status DropIndex(const std::string& index_name);

  // --- DML (index-maintaining, logged) ---
  common::Result<RowId> Insert(const std::string& table, Tuple tuple);
  common::Status Delete(const std::string& table, RowId row);
  common::Status Update(const std::string& table, RowId row, Tuple tuple);

  // --- lookup ---
  common::Result<Table*> GetTable(const std::string& name);
  common::Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  std::vector<std::string> TableNames() const;

  // Indexes attached to `table` (empty when table unknown).
  const std::vector<std::unique_ptr<IndexEntry>>* IndexesOn(
      const std::string& table) const;

  // Finds an index on `table` whose column list starts with `columns`
  // (exact order) and matches `kind`; nullptr when absent.
  const IndexEntry* FindIndex(const std::string& table,
                              const std::vector<std::string>& columns,
                              IndexKind kind) const;
  const IndexEntry* FindIndexByName(const std::string& index_name) const;

  // --- statistics (cost-based planning) ---
  // Collects per-table row counts and per-column NDV / min-max /
  // null-fraction sketches with one full scan, stores them in the catalog
  // and logs them to the WAL (they survive restarts like any other catalog
  // state). Resets the table's staleness counter.
  common::Status Analyze(const std::string& table);

  // Catalog statistics for `table`; nullptr when never analyzed (or the
  // table is unknown). Returns a shared handle: the sketch stays valid
  // for as long as the caller holds it, even across a concurrent
  // re-ANALYZE (the planner reads stats latch-free).
  std::shared_ptr<const TableStats> StatsFor(const std::string& table) const;

  // Rows inserted/deleted/updated since the last ANALYZE of `table`
  // (0 when never analyzed — staleness is moot without stats).
  uint64_t MutationsSinceAnalyze(const std::string& table) const;

  // --- durability ---
  // Writes a full snapshot and truncates the WAL. No-op for in-memory DBs.
  common::Status Checkpoint();

  bool durable() const { return wal_ != nullptr; }
  uint64_t wal_bytes() const { return wal_ ? wal_->bytes_written() : 0; }
  size_t records_recovered() const { return records_recovered_; }
  // True when Open discarded a torn/corrupt WAL tail during recovery.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }

  // --- log sequence numbers (replication) ---
  // Every logged record carries a monotonic LSN; recovery restores the
  // counter to (snapshot base + records replayed), so numbering is stable
  // across restarts and checkpoints. Under the apply-then-log discipline
  // the two views coincide by construction: a record is applied and made
  // durable inside one exclusive latch acquisition.
  //
  // LSN of the last record applied to the in-memory state. On a replica
  // this is the replication position to resume from.
  uint64_t applied_lsn() const {
    return last_lsn_.load(std::memory_order_acquire);
  }
  // LSN of the last record made durable in the local WAL (for volatile
  // databases the in-memory apply is the commit point, so the same
  // counter serves).
  uint64_t durable_lsn() const {
    return last_lsn_.load(std::memory_order_acquire);
  }
  // LSN of the last record whose write batch has PUBLISHED its epoch:
  // a snapshot taken after observing committed_lsn() >= L sees every
  // record up to L. Read-your-writes gates (QueryOptions::min_lsn) must
  // wait on this, not applied_lsn(), because applied_lsn advances
  // mid-batch before the rows are snapshot-visible.
  uint64_t committed_lsn() const {
    return committed_lsn_.load(std::memory_order_acquire);
  }

  // --- epochs & snapshots (MVCC-lite) ---
  // Epoch of the last published write batch. Rows are visible at epoch E
  // when insert_epoch <= E < delete_epoch; a write batch stamps its rows
  // with committed_epoch()+1 and publishes on WriteGuard release.
  uint64_t committed_epoch() const {
    return committed_epoch_.load(std::memory_order_acquire);
  }
  // Pins the current committed epoch for reading; see rel::Snapshot.
  Snapshot BeginSnapshot() const;
  // Epoch that in-flight writes stamp (committed_epoch()+1). Writer
  // context only (guard held); exposed for Table-level callers.
  uint64_t write_epoch() const { return committed_epoch() + 1; }
  // Superseded-but-unreclaimed version count across all tables plus
  // retired-but-unfreed chains (the rel.mvcc.garbage_versions gauge).
  uint64_t garbage_versions() const;

  // Observer for freshly logged records, invoked as (lsn, payload) after
  // each successful Log while the writer still holds the statement latch
  // exclusively. The sink must be cheap and non-blocking (the replication
  // server's sink copies the record into its ring and signals a condvar);
  // it must not call back into the database. Pass nullptr to detach.
  using WalSink = std::function<void(uint64_t, std::string_view)>;
  void SetWalSink(WalSink sink) { wal_sink_ = std::move(sink); }

  // --- replication (caller holds a WriteGuard) ---
  // Serialized full state (same body a snapshot stores, including the
  // current LSN) for bootstrapping a cold replica. Caller holds latch()
  // at least shared, which blocks writers, so the body is a consistent
  // cut at exactly applied_lsn().
  std::string EncodeState() const;

  // Replaces this database's entire state with a primary's EncodeState()
  // body; returns the embedded base LSN. Waits on the snapshot barrier
  // (catalog surgery). Durable replicas checkpoint immediately so a
  // restart resumes from the installed state instead of a stale local
  // snapshot. On failure the catalog may be left empty — the applier
  // discards the connection and re-bootstraps.
  common::Result<uint64_t> InstallReplicaState(std::string_view state_body);

  // Applies one shipped WAL record, which must carry exactly
  // applied_lsn() + 1 (gaps mean a broken stream and return Corruption).
  // The record is re-logged to the local WAL, so a replica's directory
  // recovers like a primary's.
  common::Status ApplyReplicated(uint64_t lsn, std::string_view payload);

  // Decoded header of one WAL record, for observers that must know what a
  // record touches without applying it (the replica applier maps shipped
  // records to result-cache invalidations this way).
  struct WalRecordSummary {
    bool is_dml = false;              // insert / delete / update
    bool is_insert_or_update = false; // `tuple` holds the stored row
    bool is_stats = false;            // ANALYZE output; touches no data
    std::string table;                // empty when no single table applies
    std::optional<Tuple> tuple;
    RowId row = 0;                    // valid when has_row
    bool has_row = false;             // delete / update carry a row id
  };
  static common::Result<WalRecordSummary> SummarizeWalRecord(
      std::string_view payload);

  // --- concurrency ---
  // The WRITE latch: serializes mutators (and EncodeState, which takes it
  // shared to fence writers). Readers never acquire it — take
  // BeginSnapshot() instead. Prefer rel::WriteGuard over locking this
  // directly; a bare unique_lock will not publish the batch epoch.
  std::shared_mutex& latch() const { return latch_; }

  // --- observability ---
  // Point-in-time copy of the process metrics registry (engine counters,
  // WAL/index/recovery counters, stage latency histograms). The registry
  // is process-global; this accessor is the stable API surface callers
  // and benches go through.
  static common::MetricsSnapshot MetricsSnapshot();

 private:
  friend class Snapshot;
  friend class WriteGuard;

  struct TableInfo {
    std::unique_ptr<Table> table;
    std::vector<std::unique_ptr<IndexEntry>> indexes;
    // ANALYZE output (guarded by stats_mu_); null until first analyzed.
    std::shared_ptr<const TableStats> stats;
    // Mutations applied since `stats` was collected; the planner treats
    // stats as stale past a threshold and falls back to rule-based plans.
    // Atomic: the planner reads it without the write latch.
    std::atomic<uint64_t> mutations_since_analyze{0};
  };

  // Versions unlinked by one reclamation pass, freed once every snapshot
  // registered at unlink time is gone (min live epoch > retire_epoch).
  struct RetiredVersions {
    uint64_t retire_epoch = 0;
    uint64_t count = 0;
    std::vector<RowVersion*> chains;
  };

  Database() = default;

  common::Status CreateTableInternal(const std::string& name, Schema schema);
  common::Status DropTableInternal(const std::string& name);
  common::Status CreateIndexInternal(const IndexDef& def);
  common::Status DropIndexInternal(const std::string& index_name);
  common::Result<RowId> InsertInternal(const std::string& table, Tuple tuple);
  common::Status DeleteInternal(const std::string& table, RowId row);
  common::Status UpdateInternal(const std::string& table, RowId row,
                                Tuple tuple);
  common::Status SetStatsInternal(const std::string& table, TableStats stats);

  common::Status Log(std::string_view payload);
  common::Status ReplayRecord(std::string_view payload);
  common::Status LoadSnapshot(const std::string& path);
  common::Status WriteSnapshot(const std::string& path) const;
  // Shared body serde: snapshots and replication bootstrap use one
  // format. `has_lsn` distinguishes the v2 layout (leading u64 base LSN)
  // from legacy v1 snapshots; *base_lsn receives the embedded value.
  void EncodeStateBody(BinaryWriter* body) const;
  common::Status DecodeStateBody(BinaryReader* r, bool has_lsn,
                                 uint64_t* base_lsn);
  void PublishLsn(uint64_t lsn);

  // Snapshot registry (Snapshot ctor/dtor).
  void ReleaseSnapshot(uint64_t epoch) const;
  // Marks the in-flight batch dirty (rows were stamped at write_epoch()).
  void MarkDirty() { batch_dirty_ = true; }
  // Publishes the in-flight epoch (if dirty) and runs reclamation when
  // the garbage threshold is crossed. Called by WriteGuard on release and
  // by guard-less public mutators (single-op batches).
  void FinishWriteBatch();
  // Unlinks reclaimable versions (under snap_mu_, so later snapshot
  // registrations order after the unlink stores) and frees retired
  // batches whose pinning snapshots are all gone.
  void ReclaimVersions();

  static common::Status BuildIndex(const Table& table, IndexEntry* entry);
  common::Status IndexInsert(TableInfo* info, RowId row, const Tuple& tuple);

  // Index keys of a superseded/deleted row version. Indexes are not
  // versioned, so an entry must outlive the version it points at: erasing
  // it eagerly would make index-driven plans miss rows that are still
  // visible to a pinned snapshot (the heap re-check in the executor
  // filters the other direction — entries whose row is gone at the read
  // epoch). Erasure is deferred to ReclaimVersions, once no snapshot at
  // or below retire_epoch is live.
  struct RetiredIndexKeys {
    std::string table;
    RowId row = 0;
    Tuple tuple;  // the retired version's values (keys re-extracted)
    uint64_t retire_epoch = 0;
  };
  // Erases `e`'s keys from its table's indexes, per-index skipping keys
  // the row's current live version still owns (an A->B->A value cycle
  // must not drop the live entry; for inverted indexes the guard is
  // token-granular).
  void EraseRetiredIndexKeys(const RetiredIndexKeys& e);

  mutable std::shared_mutex latch_;
  // Snapshot barrier: snapshots hold it shared for their lifetime,
  // catalog-shape DDL takes it exclusive (while already holding latch_ —
  // readers never take latch_, so the order latch_ -> ddl_latch_ cannot
  // cycle). std::shared_mutex may hold new readers back while a writer
  // waits, so long snapshots delay DDL but not each other.
  mutable std::shared_mutex ddl_latch_;
  // Registry of live snapshot epochs; min() is reclamation's low-water
  // mark. Guarded by snap_mu_, which doubles as the happens-before edge
  // between an unlink pass and any snapshot registered after it.
  mutable std::mutex snap_mu_;
  mutable std::multiset<uint64_t> live_snapshots_;
  // Guards TableInfo::stats handles (planner reads without the latch).
  mutable std::mutex stats_mu_;

  std::map<std::string, TableInfo> tables_;
  std::string dir_;
  std::unique_ptr<WriteAheadLog> wal_;
  size_t records_recovered_ = 0;
  bool recovered_torn_tail_ = false;
  bool replaying_ = false;
  // Atomic so the service layer can stamp responses with the commit LSN
  // without taking the latch; mutations happen under the exclusive latch.
  std::atomic<uint64_t> last_lsn_{0};
  std::atomic<uint64_t> committed_lsn_{0};
  std::atomic<uint64_t> committed_epoch_{0};
  // Writer-context batch state (guarded by latch_).
  bool batch_dirty_ = false;
  int guard_depth_ = 0;
  std::vector<RetiredVersions> retired_;
  std::atomic<uint64_t> retired_count_{0};
  // Index entries of retired versions awaiting erase (writer context,
  // guarded by latch_ like the batch state above).
  std::vector<RetiredIndexKeys> retired_index_;
  WalSink wal_sink_;
};

// RAII write batch: exclusive write latch for its lifetime; on release
// publishes the batch's epoch (making every row stamped inside visible to
// new snapshots atomically), triggers version reclamation when due, and
// only THEN runs callbacks queued with Defer() — after the latch is
// dropped, so deferred work (change-event fan-out, cache invalidation)
// may issue queries or re-enter the database without deadlocking.
class WriteGuard {
 public:
  explicit WriteGuard(Database* db) : db_(db), lock_(db->latch_) {
    ++db_->guard_depth_;
  }
  ~WriteGuard() {
    --db_->guard_depth_;
    if (db_->guard_depth_ == 0) db_->FinishWriteBatch();
    lock_.unlock();
    for (auto& fn : deferred_) fn();
  }

  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

  Database* db() { return db_; }
  // Queues `fn` to run after the epoch is published and the latch
  // released, in queue order.
  void Defer(std::function<void()> fn) { deferred_.push_back(std::move(fn)); }

 private:
  Database* db_;
  std::unique_lock<std::shared_mutex> lock_;
  std::vector<std::function<void()>> deferred_;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_DATABASE_H_
