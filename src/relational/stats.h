#ifndef XOMATIQ_RELATIONAL_STATS_H_
#define XOMATIQ_RELATIONAL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/serde.h"
#include "relational/table.h"
#include "relational/value.h"

namespace xomatiq::rel {

// Per-column statistics sketch collected by ANALYZE. NDV is exact (hashed
// distinct count over Value::Hash, which is Compare-consistent); min/max
// follow the Value total order and exclude NULLs.
struct ColumnStats {
  uint64_t ndv = 0;         // distinct non-NULL values
  uint64_t null_count = 0;  // NULL occurrences
  Value min;                // NULL when the column is all-NULL / table empty
  Value max;

  double null_fraction(uint64_t row_count) const {
    return row_count == 0 ? 0.0
                          : static_cast<double>(null_count) /
                                static_cast<double>(row_count);
  }
};

// Table-level statistics: the catalog state behind cost-based planning.
// `analyzed_version` counts ANALYZE runs process-wide so plan caches can
// detect refreshes.
struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;  // parallel to the table schema
};

// Full-scan statistics collection (one pass, all columns at once).
TableStats ComputeTableStats(const Table& table);

// Snapshot / WAL serialization.
void EncodeTableStats(const TableStats& stats, BinaryWriter* w);
common::Result<TableStats> DecodeTableStats(BinaryReader* r);

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_STATS_H_
