#ifndef XOMATIQ_RELATIONAL_WAL_H_
#define XOMATIQ_RELATIONAL_WAL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"

namespace xomatiq::rel {

// Records whose declared length exceeds this are treated as a torn/corrupt
// tail during replay (a garbage length from a torn header must not drive a
// multi-gigabyte allocation).
inline constexpr uint32_t kMaxWalRecordBytes = 64u << 20;  // 64 MiB

struct WalOptions {
  // fsync(2) after every append (fflush alone leaves the record in the OS
  // page cache, which survives a process crash but not a power failure).
  bool fsync_each_append = false;
  // Bench-only escape hatch: skip the per-record CRC32-C so bench_pipeline
  // can price the checksum. Records written with checksum=false are not
  // replayable; never disable outside a throwaway benchmark log.
  bool checksum = true;
};

// Append-only write-ahead log. Each record is framed as
// [u32 payload_len][u32 crc32c(payload)][payload]; recovery replays records
// in order and stops cleanly at the first truncated or corrupt frame
// (torn-write tolerance). Fault-injection points (common::FaultInjector):
//   wal.append.before  fail before any byte is written
//   wal.append.torn    write a partial frame, then fail (simulated crash
//                      mid-write; the torn tail must be discarded on
//                      recovery)
//   wal.append.flush   fail the flush/fsync (record may not be durable)
//   wal.reset          fail the post-checkpoint truncation
class WriteAheadLog {
 public:
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Opens (creating if needed) the log at `path` for appending.
  static common::Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, WalOptions options = {});

  // Appends one framed record and flushes it to the OS (plus fsync when
  // configured). The flush is the commit point: an OK return means the
  // record will survive reopen.
  common::Status Append(std::string_view payload);

  // Reads records from `path`, invoking `replay` per intact payload.
  // Returns the number of records replayed. A missing file counts as an
  // empty log. Corrupt or truncated tails (bad length, short read, CRC
  // mismatch) end replay cleanly (reported via *truncated_tail and the
  // rel.wal.torn_tail_discarded counter).
  static common::Result<size_t> Replay(
      const std::string& path,
      const std::function<common::Status(std::string_view)>& replay,
      bool* truncated_tail = nullptr);

  // Truncates the log to empty (after a checkpoint).
  common::Status Reset();

  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  WriteAheadLog(std::string path, std::FILE* file, WalOptions options)
      : path_(std::move(path)), file_(file), options_(options) {}

  std::string path_;
  std::FILE* file_ = nullptr;
  WalOptions options_;
  uint64_t bytes_written_ = 0;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_WAL_H_
