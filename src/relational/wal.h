#ifndef XOMATIQ_RELATIONAL_WAL_H_
#define XOMATIQ_RELATIONAL_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"

namespace xomatiq::rel {

// Records whose declared length exceeds this are treated as a torn/corrupt
// tail during replay (a garbage length from a torn header must not drive a
// multi-gigabyte allocation).
inline constexpr uint32_t kMaxWalRecordBytes = 64u << 20;  // 64 MiB

struct WalOptions {
  // fsync(2) after every append (fflush alone leaves the record in the OS
  // page cache, which survives a process crash but not a power failure).
  bool fsync_each_append = false;
  // Bench-only escape hatch: skip the per-record CRC32-C so bench_pipeline
  // can price the checksum. Records written with checksum=false are not
  // replayable; never disable outside a throwaway benchmark log.
  bool checksum = true;
};

// Append-only write-ahead log. Each record is framed as
// [u32 payload_len][u32 crc32c(payload)][payload]; recovery replays records
// in order and stops cleanly at the first truncated or corrupt frame
// (torn-write tolerance).
//
// LSNs: every appended record carries a monotonic log sequence number,
// assigned at append time from the counter seeded by set_next_lsn. The
// on-disk frame format is unchanged — a record's LSN is implicit in its
// position (snapshot base LSN + 1-based record index), which is what lets
// recovery and replication agree on numbering without rewriting the log.
// The counter survives Reset(): a checkpoint truncates the file but LSNs
// keep climbing for the database's lifetime.
//
// Fault-injection points (common::FaultInjector):
//   wal.append.before  fail before any byte is written
//   wal.append.torn    write a partial frame, then fail (simulated crash
//                      mid-write; the torn tail must be discarded on
//                      recovery)
//   wal.append.flush   fail the flush/fsync (record may not be durable)
//   wal.reset          fail the post-checkpoint truncation
class WriteAheadLog {
 public:
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Opens (creating if needed) the log at `path` for appending.
  static common::Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, WalOptions options = {});

  // Appends one framed record and flushes it to the OS (plus fsync when
  // configured). The flush is the commit point: an OK return means the
  // record will survive reopen.
  common::Status Append(std::string_view payload);

  // Reads records from `path`, invoking `replay` per intact payload.
  // Returns the number of records replayed. A missing file counts as an
  // empty log. Corrupt or truncated tails (bad length, short read, CRC
  // mismatch) end replay cleanly (reported via *truncated_tail and the
  // rel.wal.torn_tail_discarded counter).
  static common::Result<size_t> Replay(
      const std::string& path,
      const std::function<common::Status(std::string_view)>& replay,
      bool* truncated_tail = nullptr);

  // Truncates the log to empty (after a checkpoint).
  common::Status Reset();

  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return bytes_written_; }

  // Seeds the LSN counter: the next successful Append is numbered `lsn`.
  // Database::Open calls this with (snapshot base + records replayed + 1).
  void set_next_lsn(uint64_t lsn) { next_lsn_ = lsn; }
  // LSN assigned to the most recent successful Append (0 = none yet).
  uint64_t last_lsn() const { return next_lsn_ - 1; }

 private:
  WriteAheadLog(std::string path, std::FILE* file, WalOptions options)
      : path_(std::move(path)), file_(file), options_(options) {}

  std::string path_;
  std::FILE* file_ = nullptr;
  WalOptions options_;
  uint64_t bytes_written_ = 0;
  uint64_t next_lsn_ = 1;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_WAL_H_
