#ifndef XOMATIQ_RELATIONAL_WAL_H_
#define XOMATIQ_RELATIONAL_WAL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"

namespace xomatiq::rel {

// Append-only write-ahead log. Each record is framed as
// [u32 payload_len][u32 crc32(payload)][payload]; recovery replays records
// in order and stops cleanly at the first truncated or corrupt frame
// (torn-write tolerance).
class WriteAheadLog {
 public:
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Opens (creating if needed) the log at `path` for appending.
  static common::Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path);

  // Appends one framed record and flushes it to the OS.
  common::Status Append(std::string_view payload);

  // Reads records from `path`, invoking `replay` per intact payload.
  // Returns the number of records replayed. A missing file counts as an
  // empty log. Corrupt tails are ignored (logged into *truncated_tail).
  static common::Result<size_t> Replay(
      const std::string& path,
      const std::function<common::Status(std::string_view)>& replay,
      bool* truncated_tail = nullptr);

  // Truncates the log to empty (after a checkpoint).
  common::Status Reset();

  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  WriteAheadLog(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t bytes_written_ = 0;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_WAL_H_
