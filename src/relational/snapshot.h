#ifndef XOMATIQ_RELATIONAL_SNAPSHOT_H_
#define XOMATIQ_RELATIONAL_SNAPSHOT_H_

#include <cstdint>
#include <utility>

namespace xomatiq::rel {

class Database;

// RAII read snapshot: a pinned committed epoch plus a shared hold on the
// database's DDL barrier. While a Snapshot is alive,
//   - every read made at epoch() sees exactly the state as of the last
//     write batch committed before BeginSnapshot — concurrent DML, sync
//     and replica apply are invisible to it;
//   - version reclamation keeps its low-water mark at or below epoch(),
//     so tuple pointers obtained from reads at this epoch stay valid;
//   - catalog-shape DDL (CREATE/DROP TABLE or INDEX, replica bootstrap)
//     blocks until release, so Table* / IndexEntry* stay valid too.
//
// Snapshots are cheap (one mutex-protected registry insert plus a shared
// latch) but hold reclamation back and stall DDL: scope them to one
// statement or one request, not to a connection's lifetime.
//
// Thread-affine: release on the thread that called BeginSnapshot (the
// shared DDL latch is owned per-thread). Never begin a snapshot while
// holding one on the same thread if DDL may run concurrently, and never
// hold one across a WriteGuard that performs DDL — both can deadlock on
// the DDL barrier.
class Snapshot {
 public:
  Snapshot() = default;
  Snapshot(Snapshot&& other) noexcept
      : db_(std::exchange(other.db_, nullptr)), epoch_(other.epoch_) {}
  Snapshot& operator=(Snapshot&& other) noexcept {
    if (this != &other) {
      Release();
      db_ = std::exchange(other.db_, nullptr);
      epoch_ = other.epoch_;
    }
    return *this;
  }
  ~Snapshot() { Release(); }

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  // The pinned committed epoch; pass to Table reads / ExecutorOptions.
  uint64_t epoch() const { return epoch_; }
  bool valid() const { return db_ != nullptr; }

  // Early release (destructor equivalent); the handle becomes invalid.
  void Release();

 private:
  friend class Database;
  Snapshot(const Database* db, uint64_t epoch) : db_(db), epoch_(epoch) {}

  const Database* db_ = nullptr;
  uint64_t epoch_ = 0;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_SNAPSHOT_H_
