#ifndef XOMATIQ_RELATIONAL_INVERTED_INDEX_H_
#define XOMATIQ_RELATIONAL_INVERTED_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/btree_index.h"

namespace xomatiq::rel {

// Keyword inverted index over one TEXT column. Text is tokenized with
// common::TokenizeKeywords; postings are row-id lists kept sorted for
// cheap intersection. Backs the paper's "efficient keyword-based searches"
// design bullet (§2.2) and the contains(...) XQuery extension (§3).
class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  // Indexes every token of `text` under `row`.
  void Add(RowId row, std::string_view text);

  // Removes `row`'s postings for every token of `text` (the same text that
  // was passed to Add).
  void Remove(RowId row, std::string_view text);

  // Rows containing `token` (case-insensitive). Sorted ascending.
  std::vector<RowId> Lookup(std::string_view token) const;

  // Rows containing every token of `phrase` (AND semantics over its
  // tokenization). Sorted ascending.
  std::vector<RowId> LookupAll(std::string_view phrase) const;

  size_t num_tokens() const { return postings_.size(); }
  size_t num_postings() const { return num_postings_; }

 private:
  std::unordered_map<std::string, std::vector<RowId>> postings_;
  size_t num_postings_ = 0;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_INVERTED_INDEX_H_
