#include "relational/wal.h"

#include <unistd.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "relational/serde.h"

namespace xomatiq::rel {

using common::Result;
using common::Status;

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, WalOptions options) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("cannot open WAL at " + path);
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, f, options));
}

Status WriteAheadLog::Append(std::string_view payload) {
  XQ_FAULT_POINT("wal.append.before");
  BinaryWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(options_.checksum ? Crc32(payload) : 0);
  const std::string& header = frame.buffer();
  auto& fi = common::FaultInjector::Global();
  if (fi.any_armed()) {
    Status torn = fi.Check("wal.append.torn");
    if (!torn.ok()) {
      // Simulated crash mid-write: leave a genuinely torn frame on disk
      // (the whole header plus half the payload) so recovery has to detect
      // and discard it, then fail the append like a real I/O error.
      size_t partial = payload.size() / 2;
      (void)std::fwrite(header.data(), 1, header.size(), file_);
      (void)std::fwrite(payload.data(), 1, partial, file_);
      (void)std::fflush(file_);
      bytes_written_ += header.size() + partial;
      return torn;
    }
  }
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::IoError("WAL write failed at " + path_);
  }
  XQ_FAULT_POINT("wal.append.flush");
  if (std::fflush(file_) != 0) {
    return Status::IoError("WAL flush failed at " + path_);
  }
  if (options_.fsync_each_append && ::fsync(::fileno(file_)) != 0) {
    return Status::IoError("WAL fsync failed at " + path_);
  }
  bytes_written_ += header.size() + payload.size();
  ++next_lsn_;  // the record is durable; it owns this LSN
  static common::Counter* appends =
      common::MetricsRegistry::Global().GetCounter("rel.wal.appends");
  static common::Counter* bytes =
      common::MetricsRegistry::Global().GetCounter("rel.wal.bytes_appended");
  appends->Inc();
  bytes->Inc(header.size() + payload.size());
  return Status::OK();
}

Result<size_t> WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(std::string_view)>& replay,
    bool* truncated_tail) {
  if (truncated_tail != nullptr) *truncated_tail = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return size_t{0};  // no log yet
  size_t count = 0;
  bool torn = false;
  std::vector<char> buf;
  while (true) {
    unsigned char header[8];
    size_t got = std::fread(header, 1, 8, f);
    if (got < 8) {
      torn = got != 0;
      break;
    }
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[i]) << (8 * i);
    for (int i = 0; i < 4; ++i) crc |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
    if (len > kMaxWalRecordBytes) {
      // A torn header decodes as garbage; an implausible length must not
      // drive the allocation below.
      torn = true;
      break;
    }
    buf.resize(len);
    if (len > 0 && std::fread(buf.data(), 1, len, f) != len) {
      torn = true;
      break;
    }
    std::string_view payload(buf.data(), len);
    if (Crc32(payload) != crc) {
      torn = true;
      break;
    }
    Status s = replay(payload);
    if (!s.ok()) {
      std::fclose(f);
      return s;
    }
    ++count;
  }
  std::fclose(f);
  if (torn) {
    if (truncated_tail != nullptr) *truncated_tail = true;
    common::MetricsRegistry::Global()
        .GetCounter("rel.wal.torn_tail_discarded")
        ->Inc();
  }
  return count;
}

Status WriteAheadLog::Reset() {
  XQ_FAULT_POINT("wal.reset");
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot truncate WAL at " + path_);
  }
  bytes_written_ = 0;
  return Status::OK();
}

}  // namespace xomatiq::rel
