#ifndef XOMATIQ_RELATIONAL_TABLE_H_
#define XOMATIQ_RELATIONAL_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/btree_index.h"
#include "relational/schema.h"

namespace xomatiq::rel {

// Epoch used for "latest" reads: a writer (or any caller holding the
// database write latch) reads at kEpochMax so it sees its own in-batch,
// not-yet-published writes. Snapshot readers use the epoch captured by
// rel::Snapshot instead.
inline constexpr uint64_t kEpochMax = UINT64_MAX;

// One immutable row version. A slot holds a newest-first singly linked
// chain of versions; `tuple` and `insert_epoch` never change after the
// version is published, `delete_epoch` is written exactly once (by the
// writer that deletes or supersedes the version) and `prev` is only ever
// cut (never retargeted) by reclamation.
//
// Visibility: a version is visible to a read at epoch E iff
//   insert_epoch <= E && delete_epoch > E.
// Chains keep the invariant prev->delete_epoch == cur->insert_epoch, so a
// reader walking from the head stops at the first version with
// insert_epoch <= E and never dereferences anything older — which is what
// makes epoch-based reclamation of the tail safe while reads are in
// flight (see Database::ReclaimVersions).
struct RowVersion {
  Tuple tuple;
  uint64_t insert_epoch = 0;
  std::atomic<uint64_t> delete_epoch{kEpochMax};
  std::atomic<RowVersion*> prev{nullptr};
};

// Heap table: rows addressed by RowId (slot number). A slot is never
// recycled — deletion stamps the newest version's delete_epoch and an
// update pushes a new version onto the same slot — so RowIds stay stable
// for indexes, snapshots and the WAL. Type and NOT NULL checks happen on
// insert (with implicit numeric/text coercion, like a permissive
// commercial engine).
//
// Concurrency: mutators (Insert/Delete/Update/RestoreSlot/ReclaimSlots)
// must be serialized externally — in practice by the database write latch.
// Readers (Get/IsLive/Scan/ScanPartition at an explicit epoch) are
// latch-free: slot storage is a chunk directory published with
// release/acquire atomics and grows without ever moving existing slots,
// and version chains are immutable except for the single delete_epoch
// store. A reader is safe as long as the epoch it reads at is pinned by a
// live rel::Snapshot (which holds reclamation's low-water mark down).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // Validates/coerces `tuple` against the schema and appends it, stamped
  // with insert_epoch = `epoch` (the writer's in-flight epoch).
  common::Result<RowId> Insert(Tuple tuple, uint64_t epoch);

  // Fetches the row version visible at `epoch`; NotFound when no version
  // is visible (deleted, not yet inserted, or out of range).
  common::Result<const Tuple*> Get(RowId row, uint64_t epoch = kEpochMax)
      const;
  bool IsLive(RowId row, uint64_t epoch = kEpochMax) const {
    return VisibleVersion(row, epoch) != nullptr;
  }

  // Stamps the newest version's delete_epoch = `epoch`. NotFound when the
  // row is not live at latest.
  common::Status Delete(RowId row, uint64_t epoch);

  // Pushes a new version (re-validated) onto the slot and supersedes the
  // old one (old.delete_epoch = new.insert_epoch = `epoch`). Readers
  // pinned below `epoch` keep seeing the old version.
  common::Status Update(RowId row, Tuple tuple, uint64_t epoch);

  // Visits rows visible at `epoch` in RowId order; visitor returns false
  // to stop. The no-epoch overloads read at latest (kEpochMax) and exist
  // for writer-context callers (index build, ANALYZE, state encode).
  void Scan(uint64_t epoch,
            const std::function<bool(RowId, const Tuple&)>& visit) const;
  void Scan(const std::function<bool(RowId, const Tuple&)>& visit) const {
    Scan(kEpochMax, visit);
  }

  // Visits visible rows with first_slot <= RowId < last_slot in RowId
  // order; bounds are clamped to [0, num_slots()). Contiguous partitions
  // cover the table exactly once, so parallel scan workers can each take
  // a disjoint slot range and the concatenation preserves RowId order.
  void ScanPartition(uint64_t epoch, RowId first_slot, RowId last_slot,
                     const std::function<bool(RowId, const Tuple&)>& visit)
      const;
  void ScanPartition(RowId first_slot, RowId last_slot,
                     const std::function<bool(RowId, const Tuple&)>& visit)
      const {
    ScanPartition(kEpochMax, first_slot, last_slot, visit);
  }

  // Appends a slot verbatim during snapshot restore; skips validation so
  // tombstoned slots keep their positions and RowIds stay stable. A dead
  // slot is restored with an empty version chain.
  RowId RestoreSlot(Tuple tuple, bool live, uint64_t epoch);

  // Unlinks every version whose delete_epoch <= low_water (invisible to
  // all live and future snapshots) and appends the detached sub-chains to
  // `retired`; freeing them is the caller's job once no reader registered
  // before the unlink can still hold a pointer into them (the database
  // defers the delete behind the snapshot registry). Returns the number
  // of versions unlinked. Caller must hold the write latch AND the
  // snapshot-registry mutex (the registry mutex is what orders later
  // snapshot registrations after the unlink stores).
  uint64_t ReclaimSlots(uint64_t low_water, std::vector<RowVersion*>* retired);

  // Rows visible at latest (maintained by the mutators; atomic so the
  // planner reads it latch-free).
  size_t num_live_rows() const {
    return live_count_.load(std::memory_order_acquire);
  }
  // Published slot count; readers never touch slots at or above it.
  size_t num_slots() const {
    return static_cast<size_t>(num_slots_.load(std::memory_order_acquire));
  }
  // Superseded/deleted versions not yet reclaimed (reclamation trigger and
  // the rel.mvcc.garbage_versions gauge feed off this).
  uint64_t garbage_versions() const {
    return garbage_.load(std::memory_order_acquire);
  }
  // Total versions reachable from the slots (test/debug introspection;
  // writer context only — it walks chains non-atomically).
  uint64_t CountVersions() const;

  // Frees a chain detached by ReclaimSlots (newest-to-oldest walk).
  static void FreeChain(RowVersion* head);

 private:
  // 1024 slots per chunk: slot addresses never move as the table grows,
  // which is what lets readers hold Tuple pointers across growth.
  static constexpr size_t kChunkShift = 10;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  struct Chunk {
    std::array<std::atomic<RowVersion*>, kChunkSize> slots{};
  };

  common::Status ValidateAndCoerce(Tuple* tuple) const;
  // First version of `row`'s chain visible at `epoch`; nullptr when none.
  const RowVersion* VisibleVersion(RowId row, uint64_t epoch) const;
  // Newest version of a slot (writer context).
  RowVersion* Head(RowId row) const;
  std::atomic<RowVersion*>& SlotRef(uint64_t slot) const;
  // Appends a fresh version in a new slot (storage growth, head install,
  // slot-count publish).
  RowId AppendSlot(RowVersion* version);

  std::string name_;
  Schema schema_;

  // Chunk directory: an atomic pointer to an array of atomic chunk
  // pointers. Growth allocates a larger array, copies the chunk pointers
  // and republishes; superseded arrays are parked in dir_storage_ until
  // destruction so readers holding the old directory stay valid (the
  // doubling schedule bounds the waste at ~one extra pointer per chunk).
  std::atomic<std::atomic<Chunk*>*> dir_{nullptr};
  size_t dir_capacity_ = 0;  // writer-only
  std::vector<std::unique_ptr<std::atomic<Chunk*>[]>> dir_storage_;
  std::vector<std::unique_ptr<Chunk>> chunks_;  // writer-only ownership

  std::atomic<uint64_t> num_slots_{0};
  std::atomic<size_t> live_count_{0};
  std::atomic<uint64_t> garbage_{0};
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_TABLE_H_
