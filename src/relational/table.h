#ifndef XOMATIQ_RELATIONAL_TABLE_H_
#define XOMATIQ_RELATIONAL_TABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/btree_index.h"
#include "relational/schema.h"

namespace xomatiq::rel {

// Heap table: rows addressed by RowId (slot number). Deleted slots are
// tombstoned, not compacted, so RowIds stay stable for indexes. Type and
// NOT NULL checks happen on insert (with implicit numeric/text coercion,
// like a permissive commercial engine).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // Validates/coerces `tuple` against the schema and appends it.
  common::Result<RowId> Insert(Tuple tuple);

  // Fetches a live row; NotFound for deleted/out-of-range slots.
  common::Result<const Tuple*> Get(RowId row) const;
  // Bounds-checked: RowId is 64-bit while slot counts are size_t, so the
  // comparison is done in RowId width to stay exact on 32-bit size_t.
  bool IsLive(RowId row) const {
    return row < static_cast<RowId>(rows_.size()) &&
           !deleted_[static_cast<size_t>(row)];
  }

  // Tombstones a live row.
  common::Status Delete(RowId row);

  // Replaces a live row in place (re-validated).
  common::Status Update(RowId row, Tuple tuple);

  // Visits live rows in RowId order; visitor returns false to stop.
  void Scan(const std::function<bool(RowId, const Tuple&)>& visit) const;

  // Visits live rows with first_slot <= RowId < last_slot in RowId order;
  // bounds are clamped to [0, num_slots()). Contiguous partitions cover
  // the table exactly once, so parallel scan workers can each take a
  // disjoint slot range and the concatenation preserves RowId order.
  void ScanPartition(RowId first_slot, RowId last_slot,
                     const std::function<bool(RowId, const Tuple&)>& visit)
      const;

  // Appends a slot verbatim during snapshot restore; skips validation so
  // tombstoned slots keep their positions and RowIds stay stable.
  RowId RestoreSlot(Tuple tuple, bool live);

  size_t num_live_rows() const { return live_count_; }
  size_t num_slots() const { return rows_.size(); }

 private:
  common::Status ValidateAndCoerce(Tuple* tuple) const;

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  std::vector<bool> deleted_;
  size_t live_count_ = 0;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_TABLE_H_
