#include "relational/stats.h"

#include <unordered_set>

namespace xomatiq::rel {

using common::Result;
using common::Status;

TableStats ComputeTableStats(const Table& table) {
  TableStats stats;
  size_t ncols = table.schema().size();
  stats.columns.resize(ncols);
  // Exact NDV via hashed distinct sets of full Values (Value::Hash is
  // Compare-consistent, so INT 3 and DOUBLE 3.0 count as one value, which
  // matches SQL DISTINCT semantics).
  std::vector<std::unordered_set<Value, ValueHasher>> distinct(ncols);
  table.Scan([&](RowId, const Tuple& tuple) {
    ++stats.row_count;
    for (size_t c = 0; c < ncols; ++c) {
      const Value& v = tuple[c];
      ColumnStats& cs = stats.columns[c];
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      if (distinct[c].insert(v).second) {
        if (cs.min.is_null() || Value::Compare(v, cs.min) < 0) cs.min = v;
        if (cs.max.is_null() || Value::Compare(v, cs.max) > 0) cs.max = v;
      }
    }
    return true;
  });
  for (size_t c = 0; c < ncols; ++c) {
    stats.columns[c].ndv = distinct[c].size();
  }
  return stats;
}

void EncodeTableStats(const TableStats& stats, BinaryWriter* w) {
  w->PutU64(stats.row_count);
  w->PutU32(static_cast<uint32_t>(stats.columns.size()));
  for (const ColumnStats& cs : stats.columns) {
    w->PutU64(cs.ndv);
    w->PutU64(cs.null_count);
    EncodeValue(cs.min, w);
    EncodeValue(cs.max, w);
  }
}

Result<TableStats> DecodeTableStats(BinaryReader* r) {
  TableStats stats;
  XQ_ASSIGN_OR_RETURN(stats.row_count, r->GetU64());
  XQ_ASSIGN_OR_RETURN(uint32_t ncols, r->GetU32());
  stats.columns.resize(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    ColumnStats& cs = stats.columns[c];
    XQ_ASSIGN_OR_RETURN(cs.ndv, r->GetU64());
    XQ_ASSIGN_OR_RETURN(cs.null_count, r->GetU64());
    XQ_ASSIGN_OR_RETURN(cs.min, DecodeValue(r));
    XQ_ASSIGN_OR_RETURN(cs.max, DecodeValue(r));
  }
  return stats;
}

}  // namespace xomatiq::rel
