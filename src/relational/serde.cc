#include "relational/serde.h"

#include <cstring>

namespace xomatiq::rel {

using common::Result;
using common::Status;

void BinaryWriter::PutU32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buffer_.append(buf, 4);
}

void BinaryWriter::PutU64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buffer_.append(buf, 8);
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.append(s.data(), s.size());
}

Result<uint8_t> BinaryReader::GetU8() {
  if (pos_ + 1 > data_.size()) return Status::Corruption("truncated u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BinaryReader::GetU32() {
  if (pos_ + 4 > data_.size()) return Status::Corruption("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  if (pos_ + 8 > data_.size()) return Status::Corruption("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::GetI64() {
  XQ_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::GetDouble() {
  XQ_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::GetString() {
  XQ_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (pos_ + len > data_.size()) return Status::Corruption("truncated string");
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

void EncodeValue(const Value& v, BinaryWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w->PutI64(v.AsInt());
      break;
    case ValueType::kDouble:
      w->PutDouble(v.AsDouble());
      break;
    case ValueType::kText:
      w->PutString(v.AsText());
      break;
  }
}

Result<Value> DecodeValue(BinaryReader* r) {
  XQ_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      XQ_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      XQ_ASSIGN_OR_RETURN(double v, r->GetDouble());
      return Value::Double(v);
    }
    case ValueType::kText: {
      XQ_ASSIGN_OR_RETURN(std::string v, r->GetString());
      return Value::Text(std::move(v));
    }
  }
  return Status::Corruption("bad value tag " + std::to_string(tag));
}

void EncodeTuple(const Tuple& t, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(t.size()));
  for (const Value& v : t) EncodeValue(v, w);
}

Result<Tuple> DecodeTuple(BinaryReader* r) {
  XQ_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  Tuple t;
  t.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    XQ_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    t.push_back(std::move(v));
  }
  return t;
}

void EncodeSchema(const Schema& s, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(s.size()));
  for (const Column& c : s.columns()) {
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
    w->PutU8(c.not_null ? 1 : 0);
  }
}

Result<Schema> DecodeSchema(BinaryReader* r) {
  XQ_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Column c;
    XQ_ASSIGN_OR_RETURN(c.name, r->GetString());
    XQ_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    if (type > static_cast<uint8_t>(ValueType::kText)) {
      return Status::Corruption("bad column type");
    }
    c.type = static_cast<ValueType>(type);
    XQ_ASSIGN_OR_RETURN(uint8_t nn, r->GetU8());
    c.not_null = nn != 0;
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

namespace {

// CRC32-C (Castagnoli polynomial, reflected). The WAL pays this once per
// record on the append path, so the polynomial is chosen for the x86-64
// crc32 instruction; the software fallback uses slicing-by-8 so even
// without SSE4.2 the cost stays well under the fflush that follows it.
// Hardware and software paths produce identical values.
constexpr uint32_t kCrcPoly = 0x82F63B78U;

// Eight derived tables: table[t][b] is the CRC of byte b followed by t
// zero bytes, letting the slicing loop fold 8 input bytes per iteration.
const uint32_t (*CrcTables())[256] {
  static uint32_t tables[8][256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? kCrcPoly ^ (c >> 1) : c >> 1;
      }
      tables[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = tables[0][i];
      for (int t = 1; t < 8; ++t) {
        c = tables[0][c & 0xFF] ^ (c >> 8);
        tables[t][i] = c;
      }
    }
    return true;
  }();
  (void)init;
  return tables;
}

uint32_t Crc32Soft(std::string_view data) {
  const uint32_t(*table)[256] = CrcTables();
  uint32_t crc = 0xFFFFFFFFU;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;
    crc = table[7][word & 0xFF] ^ table[6][(word >> 8) & 0xFF] ^
          table[5][(word >> 16) & 0xFF] ^ table[4][(word >> 24) & 0xFF] ^
          table[3][(word >> 32) & 0xFF] ^ table[2][(word >> 40) & 0xFF] ^
          table[1][(word >> 48) & 0xFF] ^ table[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
#endif
  while (n-- > 0) {
    crc = table[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define XQ_CRC32_HW 1
__attribute__((target("sse4.2"))) uint32_t Crc32Hw(std::string_view data) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  uint64_t crc = 0xFFFFFFFFU;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __builtin_ia32_crc32di(crc, word);
    p += 8;
    n -= 8;
  }
  uint32_t c = static_cast<uint32_t>(crc);
  while (n-- > 0) {
    c = __builtin_ia32_crc32qi(c, *p++);
  }
  return c ^ 0xFFFFFFFFU;
}
#endif

}  // namespace

uint32_t Crc32(std::string_view data) {
#ifdef XQ_CRC32_HW
  static const bool hw = __builtin_cpu_supports("sse4.2");
  if (hw) return Crc32Hw(data);
#endif
  return Crc32Soft(data);
}

}  // namespace xomatiq::rel
