#include "relational/table.h"

#include <algorithm>

#include "common/metrics.h"

namespace xomatiq::rel {

using common::Result;
using common::Status;

namespace {

// Handles are resolved once; ScanPartition accumulates locally and flushes
// one atomic add per scan so the per-row loop stays counter-free.
common::Counter* ScansCounter() {
  static common::Counter* c =
      common::MetricsRegistry::Global().GetCounter("rel.table.scans");
  return c;
}

common::Counter* RowsScannedCounter() {
  static common::Counter* c =
      common::MetricsRegistry::Global().GetCounter("rel.table.rows_scanned");
  return c;
}

common::Counter* RowsFetchedCounter() {
  static common::Counter* c =
      common::MetricsRegistry::Global().GetCounter("rel.table.rows_fetched");
  return c;
}

}  // namespace

Status Table::ValidateAndCoerce(Tuple* tuple) const {
  if (tuple->size() != schema_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple->size()) + " != schema arity " +
        std::to_string(schema_.size()) + " for table " + name_);
  }
  for (size_t i = 0; i < tuple->size(); ++i) {
    const Column& col = schema_.column(i);
    Value& v = (*tuple)[i];
    if (v.is_null()) {
      if (col.not_null) {
        return Status::ConstraintViolation("NULL in NOT NULL column " +
                                           col.name + " of " + name_);
      }
      continue;
    }
    if (v.type() != col.type) {
      auto cast = v.CastTo(col.type);
      if (!cast.ok()) return cast.status();
      v = std::move(cast).value();
    }
  }
  return Status::OK();
}

Result<RowId> Table::Insert(Tuple tuple) {
  XQ_RETURN_IF_ERROR(ValidateAndCoerce(&tuple));
  RowId row = rows_.size();
  rows_.push_back(std::move(tuple));
  deleted_.push_back(false);
  ++live_count_;
  return row;
}

Result<const Tuple*> Table::Get(RowId row) const {
  if (!IsLive(row)) {
    return Status::NotFound("row " + std::to_string(row) + " not live in " +
                            name_);
  }
  RowsFetchedCounter()->Inc();
  return &rows_[static_cast<size_t>(row)];
}

Status Table::Delete(RowId row) {
  if (!IsLive(row)) {
    return Status::NotFound("row " + std::to_string(row) + " not live in " +
                            name_);
  }
  size_t slot = static_cast<size_t>(row);
  deleted_[slot] = true;
  rows_[slot].clear();
  rows_[slot].shrink_to_fit();
  --live_count_;
  return Status::OK();
}

Status Table::Update(RowId row, Tuple tuple) {
  if (!IsLive(row)) {
    return Status::NotFound("row " + std::to_string(row) + " not live in " +
                            name_);
  }
  XQ_RETURN_IF_ERROR(ValidateAndCoerce(&tuple));
  rows_[static_cast<size_t>(row)] = std::move(tuple);
  return Status::OK();
}

RowId Table::RestoreSlot(Tuple tuple, bool live) {
  RowId row = rows_.size();
  rows_.push_back(std::move(tuple));
  deleted_.push_back(!live);
  if (live) ++live_count_;
  return row;
}

void Table::Scan(const std::function<bool(RowId, const Tuple&)>& visit) const {
  ScanPartition(0, static_cast<RowId>(rows_.size()), visit);
}

void Table::ScanPartition(
    RowId first_slot, RowId last_slot,
    const std::function<bool(RowId, const Tuple&)>& visit) const {
  RowId end = std::min(last_slot, static_cast<RowId>(rows_.size()));
  uint64_t visited = 0;
  for (RowId row = first_slot; row < end; ++row) {
    size_t slot = static_cast<size_t>(row);
    if (deleted_[slot]) continue;
    ++visited;
    if (!visit(row, rows_[slot])) break;
  }
  ScansCounter()->Inc();
  RowsScannedCounter()->Inc(visited);
}

}  // namespace xomatiq::rel
