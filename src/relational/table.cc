#include "relational/table.h"

#include <algorithm>

#include "common/metrics.h"

namespace xomatiq::rel {

using common::Result;
using common::Status;

namespace {

// Handles are resolved once; ScanPartition accumulates locally and flushes
// one atomic add per scan so the per-row loop stays counter-free.
common::Counter* ScansCounter() {
  static common::Counter* c =
      common::MetricsRegistry::Global().GetCounter("rel.table.scans");
  return c;
}

common::Counter* RowsScannedCounter() {
  static common::Counter* c =
      common::MetricsRegistry::Global().GetCounter("rel.table.rows_scanned");
  return c;
}

common::Counter* RowsFetchedCounter() {
  static common::Counter* c =
      common::MetricsRegistry::Global().GetCounter("rel.table.rows_fetched");
  return c;
}

}  // namespace

Table::~Table() {
  // Readers are excluded by the time a table is destroyed (DDL holds the
  // snapshot barrier), so plain walks are fine here.
  uint64_t slots = num_slots_.load(std::memory_order_relaxed);
  for (uint64_t s = 0; s < slots; ++s) {
    FreeChain(SlotRef(s).load(std::memory_order_relaxed));
  }
}

void Table::FreeChain(RowVersion* head) {
  while (head != nullptr) {
    RowVersion* prev = head->prev.load(std::memory_order_relaxed);
    delete head;
    head = prev;
  }
}

Status Table::ValidateAndCoerce(Tuple* tuple) const {
  if (tuple->size() != schema_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple->size()) + " != schema arity " +
        std::to_string(schema_.size()) + " for table " + name_);
  }
  for (size_t i = 0; i < tuple->size(); ++i) {
    const Column& col = schema_.column(i);
    Value& v = (*tuple)[i];
    if (v.is_null()) {
      if (col.not_null) {
        return Status::ConstraintViolation("NULL in NOT NULL column " +
                                           col.name + " of " + name_);
      }
      continue;
    }
    if (v.type() != col.type) {
      auto cast = v.CastTo(col.type);
      if (!cast.ok()) return cast.status();
      v = std::move(cast).value();
    }
  }
  return Status::OK();
}

std::atomic<RowVersion*>& Table::SlotRef(uint64_t slot) const {
  std::atomic<Chunk*>* dir = dir_.load(std::memory_order_acquire);
  Chunk* chunk = dir[slot >> kChunkShift].load(std::memory_order_acquire);
  return chunk->slots[slot & (kChunkSize - 1)];
}

RowId Table::AppendSlot(RowVersion* version) {
  uint64_t slot = num_slots_.load(std::memory_order_relaxed);
  size_t chunk_index = static_cast<size_t>(slot >> kChunkShift);
  if (chunk_index >= chunks_.size()) {
    if (chunk_index >= dir_capacity_) {
      size_t cap = dir_capacity_ == 0 ? 8 : dir_capacity_ * 2;
      auto fresh = std::make_unique<std::atomic<Chunk*>[]>(cap);
      for (size_t i = 0; i < chunks_.size(); ++i) {
        fresh[i].store(chunks_[i].get(), std::memory_order_relaxed);
      }
      for (size_t i = chunks_.size(); i < cap; ++i) {
        fresh[i].store(nullptr, std::memory_order_relaxed);
      }
      dir_.store(fresh.get(), std::memory_order_release);
      dir_capacity_ = cap;
      dir_storage_.push_back(std::move(fresh));
    }
    chunks_.push_back(std::make_unique<Chunk>());
    std::atomic<Chunk*>* dir = dir_.load(std::memory_order_relaxed);
    dir[chunk_index].store(chunks_.back().get(), std::memory_order_release);
  }
  SlotRef(slot).store(version, std::memory_order_release);
  // Publishing the count last is what lets readers index slot < n without
  // any further checks: the directory, chunk and head stores above are
  // all visible once this release store is observed.
  num_slots_.store(slot + 1, std::memory_order_release);
  return static_cast<RowId>(slot);
}

Result<RowId> Table::Insert(Tuple tuple, uint64_t epoch) {
  XQ_RETURN_IF_ERROR(ValidateAndCoerce(&tuple));
  auto* v = new RowVersion{std::move(tuple), epoch, kEpochMax, nullptr};
  RowId row = AppendSlot(v);
  live_count_.fetch_add(1, std::memory_order_release);
  return row;
}

RowId Table::RestoreSlot(Tuple tuple, bool live, uint64_t epoch) {
  if (!live) {
    // Dead slot: empty chain. The slot still occupies a RowId so later
    // slots keep their positions.
    return AppendSlot(nullptr);
  }
  auto* v = new RowVersion{std::move(tuple), epoch, kEpochMax, nullptr};
  RowId row = AppendSlot(v);
  live_count_.fetch_add(1, std::memory_order_release);
  return row;
}

RowVersion* Table::Head(RowId row) const {
  if (row >= num_slots_.load(std::memory_order_acquire)) return nullptr;
  return SlotRef(row).load(std::memory_order_acquire);
}

const RowVersion* Table::VisibleVersion(RowId row, uint64_t epoch) const {
  const RowVersion* v = Head(row);
  while (v != nullptr && v->insert_epoch > epoch) {
    v = v->prev.load(std::memory_order_acquire);
  }
  if (v == nullptr) return nullptr;
  // A live version carries delete_epoch == kEpochMax; it must stay
  // visible even when reading at kEpochMax itself (the writer-context
  // "latest" view), where the strict > test alone would reject it.
  const uint64_t del = v->delete_epoch.load(std::memory_order_acquire);
  return (del == kEpochMax || del > epoch) ? v : nullptr;
}

Result<const Tuple*> Table::Get(RowId row, uint64_t epoch) const {
  const RowVersion* v = VisibleVersion(row, epoch);
  if (v == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not live in " +
                            name_);
  }
  RowsFetchedCounter()->Inc();
  return &v->tuple;
}

Status Table::Delete(RowId row, uint64_t epoch) {
  RowVersion* head = Head(row);
  if (head == nullptr ||
      head->delete_epoch.load(std::memory_order_relaxed) != kEpochMax) {
    return Status::NotFound("row " + std::to_string(row) + " not live in " +
                            name_);
  }
  head->delete_epoch.store(epoch, std::memory_order_release);
  live_count_.fetch_sub(1, std::memory_order_release);
  garbage_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status Table::Update(RowId row, Tuple tuple, uint64_t epoch) {
  RowVersion* head = Head(row);
  if (head == nullptr ||
      head->delete_epoch.load(std::memory_order_relaxed) != kEpochMax) {
    return Status::NotFound("row " + std::to_string(row) + " not live in " +
                            name_);
  }
  XQ_RETURN_IF_ERROR(ValidateAndCoerce(&tuple));
  auto* fresh = new RowVersion{std::move(tuple), epoch, kEpochMax, head};
  // Supersede before publishing the new head: a reader that loads the old
  // head sees delete_epoch == epoch (> its pinned epoch, so still
  // visible); a reader that loads the new head walks to the old one only
  // when pinned below `epoch`, and the invariant
  // prev->delete_epoch == cur->insert_epoch holds either way.
  head->delete_epoch.store(epoch, std::memory_order_release);
  SlotRef(row).store(fresh, std::memory_order_release);
  garbage_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

void Table::Scan(uint64_t epoch,
                 const std::function<bool(RowId, const Tuple&)>& visit) const {
  ScanPartition(epoch, 0, static_cast<RowId>(num_slots()), visit);
}

void Table::ScanPartition(
    uint64_t epoch, RowId first_slot, RowId last_slot,
    const std::function<bool(RowId, const Tuple&)>& visit) const {
  RowId end = std::min(last_slot, static_cast<RowId>(num_slots()));
  uint64_t visited = 0;
  for (RowId row = first_slot; row < end; ++row) {
    const RowVersion* v = VisibleVersion(row, epoch);
    if (v == nullptr) continue;
    ++visited;
    if (!visit(row, v->tuple)) break;
  }
  ScansCounter()->Inc();
  RowsScannedCounter()->Inc(visited);
}

uint64_t Table::ReclaimSlots(uint64_t low_water,
                             std::vector<RowVersion*>* retired) {
  uint64_t unlinked = 0;
  uint64_t slots = num_slots_.load(std::memory_order_relaxed);
  for (uint64_t s = 0; s < slots; ++s) {
    std::atomic<RowVersion*>& slot = SlotRef(s);
    RowVersion* head = slot.load(std::memory_order_relaxed);
    if (head == nullptr) continue;
    if (head->delete_epoch.load(std::memory_order_relaxed) <= low_water) {
      // The whole chain is invisible to every live and future snapshot:
      // the slot becomes a dead slot. (Chains are delete-epoch-monotone
      // newest to oldest, so one qualifying version qualifies its tail.)
      slot.store(nullptr, std::memory_order_release);
      for (RowVersion* v = head; v != nullptr;
           v = v->prev.load(std::memory_order_relaxed)) {
        ++unlinked;
      }
      retired->push_back(head);
      continue;
    }
    RowVersion* cur = head;
    while (RowVersion* prev = cur->prev.load(std::memory_order_relaxed)) {
      if (prev->delete_epoch.load(std::memory_order_relaxed) <= low_water) {
        cur->prev.store(nullptr, std::memory_order_release);
        for (RowVersion* v = prev; v != nullptr;
             v = v->prev.load(std::memory_order_relaxed)) {
          ++unlinked;
        }
        retired->push_back(prev);
        break;
      }
      cur = prev;
    }
  }
  garbage_.fetch_sub(unlinked, std::memory_order_release);
  return unlinked;
}

uint64_t Table::CountVersions() const {
  uint64_t total = 0;
  uint64_t slots = num_slots_.load(std::memory_order_relaxed);
  for (uint64_t s = 0; s < slots; ++s) {
    for (const RowVersion* v = SlotRef(s).load(std::memory_order_relaxed);
         v != nullptr; v = v->prev.load(std::memory_order_relaxed)) {
      ++total;
    }
  }
  return total;
}

}  // namespace xomatiq::rel
