#include "relational/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/string_util.h"

namespace xomatiq::rel {

using common::Result;
using common::Status;

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kText:
      return "TEXT";
  }
  return "?";
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::TypeError("value is not numeric: " + ToString());
  }
}

Result<Value> Value::CastTo(ValueType target) const {
  if (is_null() || type() == target) return *this;
  switch (target) {
    case ValueType::kInt: {
      if (type() == ValueType::kDouble) {
        return Value::Int(static_cast<int64_t>(AsDouble()));
      }
      if (auto v = common::ParseInt64(AsText())) return Value::Int(*v);
      if (auto d = common::ParseDouble(AsText())) {
        return Value::Int(static_cast<int64_t>(*d));
      }
      return Status::TypeError("cannot cast '" + AsText() + "' to INT");
    }
    case ValueType::kDouble: {
      if (type() == ValueType::kInt) {
        return Value::Double(static_cast<double>(AsInt()));
      }
      if (auto v = common::ParseDouble(AsText())) return Value::Double(*v);
      return Status::TypeError("cannot cast '" + AsText() + "' to DOUBLE");
    }
    case ValueType::kText:
      return Value::Text(ToString());
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::Internal("bad cast target");
}

int Value::Compare(const Value& a, const Value& b) {
  bool a_num = a.type() == ValueType::kInt || a.type() == ValueType::kDouble;
  bool b_num = b.type() == ValueType::kInt || b.type() == ValueType::kDouble;
  // Class order: NULL < numeric < TEXT.
  auto klass = [](const Value& v, bool num) {
    if (v.is_null()) return 0;
    return num ? 1 : 2;
  };
  int ka = klass(a, a_num);
  int kb = klass(b, b_num);
  if (ka != kb) return ka < kb ? -1 : 1;
  if (ka == 0) return 0;  // both NULL
  if (ka == 1) {
    if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
      int64_t x = a.AsInt(), y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.type() == ValueType::kInt ? static_cast<double>(a.AsInt())
                                           : a.AsDouble();
    double y = b.type() == ValueType::kInt ? static_cast<double>(b.AsInt())
                                           : b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  int c = a.AsText().compare(b.AsText());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B97F4A7C15ULL;
    case ValueType::kInt: {
      // Hash via the double representation so INT 3 == DOUBLE 3.0 hash the
      // same, matching Compare equality.
      double d = static_cast<double>(AsInt());
      if (static_cast<int64_t>(d) == AsInt()) {
        return std::hash<double>()(d);
      }
      return std::hash<int64_t>()(AsInt());
    }
    case ValueType::kDouble:
      return std::hash<double>()(AsDouble());
    case ValueType::kText:
      return std::hash<std::string_view>()(AsText());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      double d = AsDouble();
      if (std::floor(d) == d && std::abs(d) < 1e15) {
        // Render integral doubles without a trailing fraction.
        return common::StrFormat("%.1f", d);
      }
      return common::StrFormat("%.17g", d);
    }
    case ValueType::kText:
      return AsText();
  }
  return "?";
}

int CompareCompositeKeys(const CompositeKey& a, const CompositeKey& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = Value::Compare(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

size_t CompositeKeyHasher::operator()(const CompositeKey& k) const {
  size_t h = 0x345678;
  for (const Value& v : k) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

}  // namespace xomatiq::rel
