#ifndef XOMATIQ_RELATIONAL_BTREE_INDEX_H_
#define XOMATIQ_RELATIONAL_BTREE_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "relational/value.h"

namespace xomatiq::rel {

using RowId = uint64_t;

// In-memory B+tree mapping CompositeKey -> posting list of RowIds.
// Duplicate keys share one leaf entry. Leaves are linked for range scans.
// Deletion removes rows from posting lists and drops empty entries but does
// not rebalance (underfull nodes are tolerated; bulk reloads rebuild the
// tree), which matches the warehouse's append-mostly usage.
class BTreeIndex {
 public:
  // `fanout` is the max entries per node; minimum 4.
  explicit BTreeIndex(size_t fanout = 64);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  void Insert(const CompositeKey& key, RowId row);

  // Removes (key,row); returns true when the pair was present.
  bool Erase(const CompositeKey& key, RowId row);

  // Rows whose key equals `key` (empty when absent).
  std::vector<RowId> Lookup(const CompositeKey& key) const;

  // Bound for a range scan endpoint.
  struct Bound {
    CompositeKey key;
    bool inclusive = true;
  };

  // Visits entries with lo <= key <= hi (per bound inclusivity) in key
  // order. Null bounds are unbounded. Visitor returns false to stop early.
  void Scan(const std::optional<Bound>& lo, const std::optional<Bound>& hi,
            const std::function<bool(const CompositeKey&,
                                     const std::vector<RowId>&)>& visit) const;

  // Prefix scan: entries whose first prefix.size() key parts equal
  // `prefix`, in key order.
  void ScanPrefix(const CompositeKey& prefix,
                  const std::function<bool(const CompositeKey&,
                                           const std::vector<RowId>&)>& visit)
      const;

  size_t num_keys() const { return num_keys_; }
  size_t num_entries() const { return num_entries_; }

  // Tree height (1 = just a leaf). Exposed for tests/benchmarks.
  size_t Height() const;

  // Validates B+tree invariants (key order, child separation, linked-leaf
  // chain). Returns false on violation; used by property tests.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct LeafEntry;

  Node* FindLeaf(const CompositeKey& key) const;
  bool CheckNodeInvariants(const Node* node, const CompositeKey* lo,
                           const CompositeKey* hi) const;
  void InsertIntoLeaf(Node* leaf, const CompositeKey& key, RowId row);
  void SplitLeaf(Node* leaf);
  void SplitInternal(Node* node);
  void InsertIntoParent(Node* left, CompositeKey sep, Node* right);

  std::unique_ptr<Node> root_owner_;
  Node* root_ = nullptr;
  size_t fanout_;
  size_t num_keys_ = 0;
  size_t num_entries_ = 0;
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_BTREE_INDEX_H_
