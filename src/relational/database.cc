#include "relational/database.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "relational/serde.h"

namespace xomatiq::rel {

using common::Result;
using common::Status;

namespace {

// WAL / snapshot record tags.
enum class Op : uint8_t {
  kCreateTable = 1,
  kDropTable = 2,
  kCreateIndex = 3,
  kDropIndex = 4,
  kInsert = 5,
  kDelete = 6,
  kUpdate = 7,
  kSetStats = 8,
};

bool IsDdlOp(uint8_t tag) {
  return tag >= static_cast<uint8_t>(Op::kCreateTable) &&
         tag <= static_cast<uint8_t>(Op::kDropIndex);
}

// v2 prepends the base LSN to the snapshot body; v1 snapshots (no LSN,
// base 0) are still readable so pre-LSN directories open cleanly.
constexpr char kSnapshotMagic[] = "XQSNAP2";
constexpr char kSnapshotMagicV1[] = "XQSNAP1";
constexpr char kSnapshotFile[] = "snapshot.db";
constexpr char kWalFile[] = "wal.log";

void EncodeIndexDef(const IndexDef& def, BinaryWriter* w) {
  w->PutString(def.name);
  w->PutString(def.table);
  w->PutU32(static_cast<uint32_t>(def.columns.size()));
  for (const std::string& c : def.columns) w->PutString(c);
  w->PutU8(static_cast<uint8_t>(def.kind));
  w->PutU8(def.unique ? 1 : 0);
}

Result<IndexDef> DecodeIndexDef(BinaryReader* r) {
  IndexDef def;
  XQ_ASSIGN_OR_RETURN(def.name, r->GetString());
  XQ_ASSIGN_OR_RETURN(def.table, r->GetString());
  XQ_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    XQ_ASSIGN_OR_RETURN(std::string c, r->GetString());
    def.columns.push_back(std::move(c));
  }
  XQ_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > static_cast<uint8_t>(IndexKind::kInverted)) {
    return Status::Corruption("bad index kind");
  }
  def.kind = static_cast<IndexKind>(kind);
  XQ_ASSIGN_OR_RETURN(uint8_t unique, r->GetU8());
  def.unique = unique != 0;
  return def;
}

// Extracts the index key for `entry` from `tuple`. Returns false when any
// key part is NULL (NULL keys are not indexed, as in Oracle).
bool ExtractKey(const IndexEntry& entry, const Tuple& tuple,
                CompositeKey* key) {
  key->clear();
  for (size_t idx : entry.column_indexes) {
    if (tuple[idx].is_null()) return false;
    key->push_back(tuple[idx]);
  }
  return true;
}

common::Gauge* GarbageGauge() {
  static common::Gauge* g =
      common::MetricsRegistry::Global().GetGauge("rel.mvcc.garbage_versions");
  return g;
}

}  // namespace

std::string_view IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kBTree:
      return "BTREE";
    case IndexKind::kHash:
      return "HASH";
    case IndexKind::kInverted:
      return "INVERTED";
  }
  return "?";
}

Database::~Database() {
  for (RetiredVersions& batch : retired_) {
    for (RowVersion* chain : batch.chains) Table::FreeChain(chain);
  }
}

std::unique_ptr<Database> Database::OpenInMemory() {
  return std::unique_ptr<Database>(new Database());
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                DbOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create database directory " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<Database> db(new Database());
  db->dir_ = dir;
  std::string snapshot_path = dir + "/" + kSnapshotFile;
  if (std::filesystem::exists(snapshot_path)) {
    XQ_RETURN_IF_ERROR(db->LoadSnapshot(snapshot_path));
  }
  db->replaying_ = true;
  common::ScopedLatency replay_timer(
      common::MetricsRegistry::Global().GetHistogram("rel.recovery.replay"));
  bool truncated_tail = false;
  auto replayed = WriteAheadLog::Replay(
      dir + "/" + kWalFile,
      [&](std::string_view payload) {
        XQ_FAULT_POINT("db.recovery.record");
        return db->ReplayRecord(payload);
      },
      &truncated_tail);
  replay_timer.Stop();
  db->replaying_ = false;
  if (!replayed.ok()) return replayed.status();
  db->records_recovered_ = *replayed;
  db->recovered_torn_tail_ = truncated_tail;
  common::MetricsRegistry::Global()
      .GetCounter("rel.recovery.records")
      ->Inc(*replayed);
  // LSNs are positional: record N of the WAL carries snapshot base + N,
  // so recovery lands the counter exactly where the crashed process left
  // it (minus any discarded torn tail, which was never acknowledged).
  db->PublishLsn(db->last_lsn_.load(std::memory_order_relaxed) + *replayed);
  XQ_ASSIGN_OR_RETURN(db->wal_,
                      WriteAheadLog::Open(dir + "/" + kWalFile, options.wal));
  db->wal_->set_next_lsn(db->last_lsn_.load(std::memory_order_relaxed) + 1);
  // Recovery stamped every restored/replayed row with epoch 1 (the WAL
  // carries no epochs); publish it so the first snapshot sees the full
  // recovered state. A row inserted and later deleted during replay ends
  // up (insert=1, delete=1): visible nowhere, exactly as before the crash.
  db->committed_epoch_.store(1, std::memory_order_release);
  // Replayed deletes/updates queued deferred index erases; no snapshot
  // can exist yet, so flush them now — the indexes reopen exactly as
  // tight as an eager-erase build.
  for (const RetiredIndexKeys& e : db->retired_index_) {
    db->EraseRetiredIndexKeys(e);
  }
  db->retired_index_.clear();
  db->batch_dirty_ = false;
  db->committed_lsn_.store(db->last_lsn_.load(std::memory_order_relaxed),
                           std::memory_order_release);
  return db;
}

void Database::PublishLsn(uint64_t lsn) {
  last_lsn_.store(lsn, std::memory_order_release);
  static common::Gauge* durable_gauge =
      common::MetricsRegistry::Global().GetGauge("rel.wal.durable_lsn");
  static common::Gauge* applied_gauge =
      common::MetricsRegistry::Global().GetGauge("rel.wal.applied_lsn");
  durable_gauge->Set(static_cast<int64_t>(lsn));
  applied_gauge->Set(static_cast<int64_t>(lsn));
}

Status Database::Log(std::string_view payload) {
  if (replaying_) return Status::OK();
  if (wal_ != nullptr) {
    XQ_RETURN_IF_ERROR(wal_->Append(payload));
    PublishLsn(wal_->last_lsn());
  } else {
    // Volatile database: the in-memory apply is the commit point, so the
    // LSN advances here (replication from an in-memory primary works).
    PublishLsn(last_lsn_.load(std::memory_order_relaxed) + 1);
  }
  if (wal_sink_) {
    wal_sink_(last_lsn_.load(std::memory_order_relaxed), payload);
  }
  return Status::OK();
}

common::MetricsSnapshot Database::MetricsSnapshot() {
  return common::MetricsRegistry::Global().Snapshot();
}

// --- epochs & snapshots ------------------------------------------------

Snapshot Database::BeginSnapshot() const {
  // Barrier first, registry second: once the shared DDL hold is in place
  // no catalog surgery can run, and the epoch read under snap_mu_ is the
  // one reclamation will respect as its low-water mark.
  ddl_latch_.lock_shared();
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> reg(snap_mu_);
    epoch = committed_epoch_.load(std::memory_order_acquire);
    live_snapshots_.insert(epoch);
  }
  static common::Counter* begun =
      common::MetricsRegistry::Global().GetCounter("rel.mvcc.snapshots");
  begun->Inc();
  return Snapshot(this, epoch);
}

void Database::ReleaseSnapshot(uint64_t epoch) const {
  {
    std::lock_guard<std::mutex> reg(snap_mu_);
    auto it = live_snapshots_.find(epoch);
    if (it != live_snapshots_.end()) live_snapshots_.erase(it);
  }
  ddl_latch_.unlock_shared();
}

void Snapshot::Release() {
  if (db_ != nullptr) {
    db_->ReleaseSnapshot(epoch_);
    db_ = nullptr;
  }
}

uint64_t Database::garbage_versions() const {
  uint64_t total = retired_count_.load(std::memory_order_acquire);
  for (const auto& [name, info] : tables_) {
    total += info.table->garbage_versions();
  }
  return total;
}

void Database::FinishWriteBatch() {
  if (batch_dirty_) {
    batch_dirty_ = false;
    committed_epoch_.fetch_add(1, std::memory_order_release);
    static common::Counter* epochs =
        common::MetricsRegistry::Global().GetCounter("rel.mvcc.epochs");
    epochs->Inc();
    bool reclaim_due = retired_count_.load(std::memory_order_relaxed) > 0 ||
                       !retired_index_.empty();
    if (!reclaim_due) {
      for (const auto& [name, info] : tables_) {
        uint64_t threshold =
            std::max<uint64_t>(256, info.table->num_slots() / 8);
        if (info.table->garbage_versions() >= threshold) {
          reclaim_due = true;
          break;
        }
      }
    }
    if (reclaim_due) ReclaimVersions();
    GarbageGauge()->Set(static_cast<int64_t>(garbage_versions()));
  }
  // Published AFTER the epoch: a waiter that observes committed_lsn() >= L
  // and then begins a snapshot is guaranteed to see record L's rows.
  committed_lsn_.store(last_lsn_.load(std::memory_order_relaxed),
                       std::memory_order_release);
}

void Database::ReclaimVersions() {
  // snap_mu_ held across the unlink stores: a snapshot registered after
  // this pass synchronizes-with it and can only observe the cut chains;
  // snapshots registered before are in the registry, so either their
  // epoch holds the low-water mark down or (epoch >= low_water) the
  // traversal invariant keeps them above the cut. Freeing is deferred
  // until every snapshot from before the pass is gone.
  std::lock_guard<std::mutex> reg(snap_mu_);
  uint64_t committed = committed_epoch_.load(std::memory_order_relaxed);
  uint64_t low_water =
      live_snapshots_.empty() ? committed : *live_snapshots_.begin();
  RetiredVersions batch;
  batch.retire_epoch = committed;
  for (auto& [name, info] : tables_) {
    if (info.table->garbage_versions() == 0) continue;
    batch.count += info.table->ReclaimSlots(low_water, &batch.chains);
  }
  static common::Counter* passes =
      common::MetricsRegistry::Global().GetCounter("rel.mvcc.reclaim_passes");
  passes->Inc();
  if (batch.count > 0) {
    retired_count_.fetch_add(batch.count, std::memory_order_release);
    retired_.push_back(std::move(batch));
  }
  // Free retired batches no live snapshot can still be inside: every
  // snapshot registered before the batch's unlink pass had epoch <=
  // retire_epoch, so min live epoch > retire_epoch proves they are gone.
  uint64_t min_live =
      live_snapshots_.empty() ? kEpochMax : *live_snapshots_.begin();
  uint64_t freed = 0;
  auto keep = retired_.begin();
  for (auto it = retired_.begin(); it != retired_.end(); ++it) {
    if (it->retire_epoch < min_live) {
      for (RowVersion* chain : it->chains) Table::FreeChain(chain);
      freed += it->count;
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  retired_.erase(keep, retired_.end());
  // Erase index entries of retired versions no snapshot can still read:
  // a version retired at epoch e is invisible at every epoch >= e, so
  // low_water >= e (and new snapshots pinning >= committed >= e) proves
  // no index-driven plan needs its entry anymore.
  auto kept_idx = retired_index_.begin();
  for (auto it = retired_index_.begin(); it != retired_index_.end(); ++it) {
    if (it->retire_epoch <= low_water) {
      EraseRetiredIndexKeys(*it);
    } else {
      if (kept_idx != it) *kept_idx = std::move(*it);
      ++kept_idx;
    }
  }
  retired_index_.erase(kept_idx, retired_index_.end());
  if (freed > 0) {
    retired_count_.fetch_sub(freed, std::memory_order_release);
    static common::Counter* reclaimed =
        common::MetricsRegistry::Global().GetCounter(
            "rel.mvcc.reclaimed_versions");
    reclaimed->Inc(freed);
  }
}

// --- DDL -------------------------------------------------------------

Status Database::CreateTable(const std::string& name, Schema schema) {
  {
    std::unique_lock<std::shared_mutex> barrier(ddl_latch_);
    XQ_RETURN_IF_ERROR(CreateTableInternal(name, schema));
  }
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kCreateTable));
  w.PutString(name);
  EncodeSchema(schema, &w);
  XQ_RETURN_IF_ERROR(Log(w.buffer()));
  if (guard_depth_ == 0) FinishWriteBatch();
  return Status::OK();
}

Status Database::CreateTableInternal(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  if (schema.size() == 0) {
    return Status::InvalidArgument("table needs at least one column: " + name);
  }
  // TableInfo is pinned in the map (atomic member: not movable), so it is
  // built in place.
  TableInfo& info = tables_[name];
  info.table = std::make_unique<Table>(name, std::move(schema));
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  {
    std::unique_lock<std::shared_mutex> barrier(ddl_latch_);
    XQ_RETURN_IF_ERROR(DropTableInternal(name));
  }
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kDropTable));
  w.PutString(name);
  XQ_RETURN_IF_ERROR(Log(w.buffer()));
  if (guard_depth_ == 0) FinishWriteBatch();
  return Status::OK();
}

Status Database::DropTableInternal(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  // Pending deferred index erases for this table are void — and must not
  // fire against a later table of the same name.
  retired_index_.erase(
      std::remove_if(retired_index_.begin(), retired_index_.end(),
                     [&](const RetiredIndexKeys& e) { return e.table == name; }),
      retired_index_.end());
  return Status::OK();
}

Status Database::CreateIndex(const IndexDef& def) {
  {
    std::unique_lock<std::shared_mutex> barrier(ddl_latch_);
    XQ_RETURN_IF_ERROR(CreateIndexInternal(def));
  }
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kCreateIndex));
  EncodeIndexDef(def, &w);
  XQ_RETURN_IF_ERROR(Log(w.buffer()));
  if (guard_depth_ == 0) FinishWriteBatch();
  return Status::OK();
}

Status Database::CreateIndexInternal(const IndexDef& def) {
  auto it = tables_.find(def.table);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + def.table);
  }
  if (FindIndexByName(def.name) != nullptr) {
    return Status::AlreadyExists("index exists: " + def.name);
  }
  if (def.columns.empty()) {
    return Status::InvalidArgument("index needs columns: " + def.name);
  }
  if (def.kind == IndexKind::kInverted && def.columns.size() != 1) {
    return Status::InvalidArgument(
        "inverted index takes exactly one column: " + def.name);
  }
  auto entry = std::make_unique<IndexEntry>();
  entry->def = def;
  const Schema& schema = it->second.table->schema();
  for (const std::string& col : def.columns) {
    XQ_ASSIGN_OR_RETURN(size_t idx, schema.ResolveColumn(col));
    if (def.kind == IndexKind::kInverted &&
        schema.column(idx).type != ValueType::kText) {
      return Status::InvalidArgument("inverted index column must be TEXT: " +
                                     col);
    }
    entry->column_indexes.push_back(idx);
  }
  switch (def.kind) {
    case IndexKind::kBTree:
      entry->btree = std::make_unique<BTreeIndex>();
      break;
    case IndexKind::kHash:
      entry->hash = std::make_unique<HashIndex>();
      break;
    case IndexKind::kInverted:
      entry->inverted = std::make_unique<InvertedIndex>();
      break;
  }
  XQ_RETURN_IF_ERROR(BuildIndex(*it->second.table, entry.get()));
  it->second.indexes.push_back(std::move(entry));
  return Status::OK();
}

Status Database::BuildIndex(const Table& table, IndexEntry* entry) {
  // The entry is not yet published in the catalog, so no latching; the
  // build reads the heap at latest (writer context).
  Status status;
  CompositeKey key;
  table.Scan([&](RowId row, const Tuple& tuple) {
    switch (entry->def.kind) {
      case IndexKind::kBTree:
      case IndexKind::kHash: {
        if (!ExtractKey(*entry, tuple, &key)) return true;
        if (entry->def.unique) {
          bool dup = entry->btree ? !entry->btree->Lookup(key).empty()
                                  : entry->hash->Lookup(key) != nullptr;
          if (dup) {
            status = Status::ConstraintViolation(
                "duplicate key building unique index " + entry->def.name);
            return false;
          }
        }
        if (entry->btree) {
          entry->btree->Insert(key, row);
        } else {
          entry->hash->Insert(key, row);
        }
        return true;
      }
      case IndexKind::kInverted: {
        const Value& v = tuple[entry->column_indexes[0]];
        if (!v.is_null()) entry->inverted->Add(row, v.AsText());
        return true;
      }
    }
    return true;
  });
  return status;
}

Status Database::DropIndex(const std::string& index_name) {
  {
    std::unique_lock<std::shared_mutex> barrier(ddl_latch_);
    XQ_RETURN_IF_ERROR(DropIndexInternal(index_name));
  }
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kDropIndex));
  w.PutString(index_name);
  XQ_RETURN_IF_ERROR(Log(w.buffer()));
  if (guard_depth_ == 0) FinishWriteBatch();
  return Status::OK();
}

Status Database::DropIndexInternal(const std::string& index_name) {
  for (auto& [name, info] : tables_) {
    for (size_t i = 0; i < info.indexes.size(); ++i) {
      if (info.indexes[i]->def.name == index_name) {
        info.indexes.erase(info.indexes.begin() + i);
        return Status::OK();
      }
    }
  }
  return Status::NotFound("no such index: " + index_name);
}

// --- DML -------------------------------------------------------------
// Apply-then-log: a record reaches the WAL only after the in-memory apply
// succeeded, so replay never hits validation errors; the flush in
// WriteAheadLog::Append is the commit point. Rows are stamped with
// write_epoch(); they become snapshot-visible when the enclosing
// WriteGuard (or this method itself, when called guard-less) publishes.

Result<RowId> Database::Insert(const std::string& table, Tuple tuple) {
  XQ_ASSIGN_OR_RETURN(RowId row, InsertInternal(table, std::move(tuple)));
  auto info = tables_.find(table);
  XQ_ASSIGN_OR_RETURN(const Tuple* stored, info->second.table->Get(row));
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kInsert));
  w.PutString(table);
  EncodeTuple(*stored, &w);
  XQ_RETURN_IF_ERROR(Log(w.buffer()));
  if (guard_depth_ == 0) FinishWriteBatch();
  return row;
}

Result<RowId> Database::InsertInternal(const std::string& table, Tuple tuple) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  TableInfo& info = it->second;
  XQ_ASSIGN_OR_RETURN(RowId row,
                      info.table->Insert(std::move(tuple), write_epoch()));
  XQ_ASSIGN_OR_RETURN(const Tuple* stored, info.table->Get(row));
  Status s = IndexInsert(&info, row, *stored);
  if (!s.ok()) {
    // Unique violation: undo the heap insert; IndexInsert checks
    // constraints before touching any index so nothing else to undo.
    (void)info.table->Delete(row, write_epoch());
    return s;
  }
  MarkDirty();
  info.mutations_since_analyze.fetch_add(1, std::memory_order_relaxed);
  return row;
}

Status Database::IndexInsert(TableInfo* info, RowId row, const Tuple& tuple) {
  CompositeKey key;
  CompositeKey cur_key;
  // Pass 1: unique pre-checks, no mutation (shared: probes may overlap).
  // Entries may be stale (erasure is deferred until reclamation), so a
  // candidate only counts as a duplicate when its row's CURRENT version
  // is live and still owns the key. The row being written is excluded:
  // an update that keeps its unique key must not collide with itself.
  for (const auto& entry : info->indexes) {
    if (!entry->def.unique) continue;
    if (!ExtractKey(*entry, tuple, &key)) continue;
    std::vector<RowId> candidates;
    {
      std::shared_lock<std::shared_mutex> idx_lock(entry->latch);
      if (entry->btree) {
        candidates = entry->btree->Lookup(key);
      } else if (entry->hash) {
        if (const std::vector<RowId>* rows = entry->hash->Lookup(key)) {
          candidates = *rows;
        }
      }
    }
    for (RowId r : candidates) {
      if (r == row) continue;
      auto cur = info->table->Get(r);
      if (!cur.ok()) continue;  // stale entry: row no longer live
      if (!ExtractKey(*entry, **cur, &cur_key)) continue;
      if (cur_key == key) {
        return Status::ConstraintViolation(
            "unique index " + entry->def.name + " violated by key (" +
            TupleToString(key) + ")");
      }
    }
  }
  // Pass 2: insert everywhere, idempotently per (key, row) — an update
  // whose key did not change re-presents an entry that is already there.
  for (const auto& entry : info->indexes) {
    std::unique_lock<std::shared_mutex> idx_lock(entry->latch);
    switch (entry->def.kind) {
      case IndexKind::kBTree:
        if (ExtractKey(*entry, tuple, &key)) {
          std::vector<RowId> present = entry->btree->Lookup(key);
          if (std::find(present.begin(), present.end(), row) ==
              present.end()) {
            entry->btree->Insert(key, row);
          }
        }
        break;
      case IndexKind::kHash:
        if (ExtractKey(*entry, tuple, &key)) {
          const std::vector<RowId>* present = entry->hash->Lookup(key);
          if (present == nullptr ||
              std::find(present->begin(), present->end(), row) ==
                  present->end()) {
            entry->hash->Insert(key, row);
          }
        }
        break;
      case IndexKind::kInverted: {
        // InvertedIndex::Add is already idempotent per (token, row).
        const Value& v = tuple[entry->column_indexes[0]];
        if (!v.is_null()) entry->inverted->Add(row, v.AsText());
        break;
      }
    }
  }
  return Status::OK();
}

void Database::EraseRetiredIndexKeys(const RetiredIndexKeys& e) {
  auto it = tables_.find(e.table);
  if (it == tables_.end()) return;  // table dropped meanwhile
  TableInfo& info = it->second;
  // The row's current version, if live at latest: any key it still owns
  // must survive this erase (an A->B->A value cycle retires an A-keyed
  // version while the live head is A-keyed again).
  const Tuple* cur = nullptr;
  if (auto cur_r = info.table->Get(e.row); cur_r.ok()) cur = *cur_r;
  CompositeKey key;
  CompositeKey cur_key;
  for (const auto& entry : info.indexes) {
    switch (entry->def.kind) {
      case IndexKind::kBTree:
      case IndexKind::kHash: {
        if (!ExtractKey(*entry, e.tuple, &key)) break;
        if (cur != nullptr && ExtractKey(*entry, *cur, &cur_key) &&
            cur_key == key) {
          break;  // live head still owns this key
        }
        std::unique_lock<std::shared_mutex> idx_lock(entry->latch);
        if (entry->btree) entry->btree->Erase(key, e.row);
        if (entry->hash) entry->hash->Erase(key, e.row);
        break;
      }
      case IndexKind::kInverted: {
        const Value& v = e.tuple[entry->column_indexes[0]];
        if (v.is_null()) break;
        // Token-granular guard: drop only tokens of the retired text the
        // live head's text does not also contain.
        std::set<std::string> keep;
        if (cur != nullptr) {
          const Value& cv = (*cur)[entry->column_indexes[0]];
          if (!cv.is_null()) {
            for (std::string& t : common::TokenizeKeywords(cv.AsText())) {
              keep.insert(std::move(t));
            }
          }
        }
        std::unique_lock<std::shared_mutex> idx_lock(entry->latch);
        for (const std::string& t : common::TokenizeKeywords(v.AsText())) {
          // A single already-normalized token re-tokenizes to itself.
          if (keep.count(t) == 0) entry->inverted->Remove(e.row, t);
        }
        break;
      }
    }
  }
}

Status Database::Delete(const std::string& table, RowId row) {
  XQ_RETURN_IF_ERROR(DeleteInternal(table, row));
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kDelete));
  w.PutString(table);
  w.PutU64(row);
  XQ_RETURN_IF_ERROR(Log(w.buffer()));
  if (guard_depth_ == 0) FinishWriteBatch();
  return Status::OK();
}

Status Database::DeleteInternal(const std::string& table, RowId row) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  TableInfo& info = it->second;
  XQ_ASSIGN_OR_RETURN(const Tuple* tuple, info.table->Get(row));
  Tuple saved = *tuple;
  XQ_RETURN_IF_ERROR(info.table->Delete(row, write_epoch()));
  // Index entries stay until reclamation: a pinned snapshot below this
  // epoch must still find the row through index-driven plans.
  retired_index_.push_back({table, row, std::move(saved), write_epoch()});
  MarkDirty();
  info.mutations_since_analyze.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Database::Update(const std::string& table, RowId row, Tuple tuple) {
  XQ_RETURN_IF_ERROR(UpdateInternal(table, row, tuple));
  auto info = tables_.find(table);
  XQ_ASSIGN_OR_RETURN(const Tuple* stored, info->second.table->Get(row));
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kUpdate));
  w.PutString(table);
  w.PutU64(row);
  EncodeTuple(*stored, &w);
  XQ_RETURN_IF_ERROR(Log(w.buffer()));
  if (guard_depth_ == 0) FinishWriteBatch();
  return Status::OK();
}

Status Database::UpdateInternal(const std::string& table, RowId row,
                                Tuple tuple) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  TableInfo& info = it->second;
  XQ_ASSIGN_OR_RETURN(const Tuple* old_tuple, info.table->Get(row));
  Tuple saved = *old_tuple;
  Status s = info.table->Update(row, std::move(tuple), write_epoch());
  if (!s.ok()) return s;  // nothing applied, indexes untouched
  XQ_ASSIGN_OR_RETURN(const Tuple* stored, info.table->Get(row));
  s = IndexInsert(&info, row, *stored);
  if (!s.ok()) {
    // Unique violation against the new value: restore the old row (one
    // more version — snapshot readers in between see the epoch-stamped
    // intermediate as deleted, never half-applied). The old index
    // entries were never erased, so the indexes already match the
    // restored head.
    XQ_RETURN_IF_ERROR(info.table->Update(row, saved, write_epoch()));
    MarkDirty();
    return s;
  }
  // The superseded version's keys are erased lazily at reclamation; the
  // per-index guard there keeps any key the new head still shares.
  retired_index_.push_back({table, row, std::move(saved), write_epoch()});
  MarkDirty();
  info.mutations_since_analyze.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// --- statistics --------------------------------------------------------

Status Database::Analyze(const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  common::ScopedLatency timer(
      common::MetricsRegistry::Global().GetHistogram("rel.stats.analyze"));
  TableStats stats = ComputeTableStats(*it->second.table);
  XQ_RETURN_IF_ERROR(SetStatsInternal(table, stats));
  common::MetricsRegistry::Global().GetCounter("rel.stats.analyze_runs")->Inc();
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kSetStats));
  w.PutString(table);
  EncodeTableStats(stats, &w);
  XQ_RETURN_IF_ERROR(Log(w.buffer()));
  if (guard_depth_ == 0) FinishWriteBatch();
  return Status::OK();
}

Status Database::SetStatsInternal(const std::string& table, TableStats stats) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  if (stats.columns.size() != it->second.table->schema().size()) {
    return Status::Corruption("stats column count mismatch for " + table);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    it->second.stats = std::make_shared<const TableStats>(std::move(stats));
  }
  it->second.mutations_since_analyze.store(0, std::memory_order_relaxed);
  size_t with_stats = 0;
  for (const auto& [name, info] : tables_) {
    if (info.stats != nullptr) ++with_stats;
  }
  common::MetricsRegistry::Global()
      .GetGauge("rel.stats.tables_with_stats")
      ->Set(static_cast<int64_t>(with_stats));
  return Status::OK();
}

std::shared_ptr<const TableStats> Database::StatsFor(
    const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return nullptr;
  std::lock_guard<std::mutex> lock(stats_mu_);
  return it->second.stats;
}

uint64_t Database::MutationsSinceAnalyze(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0
                             : it->second.mutations_since_analyze.load(
                                   std::memory_order_relaxed);
}

// --- lookup ----------------------------------------------------------

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.table.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return static_cast<const Table*>(it->second.table.get());
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, info] : tables_) names.push_back(name);
  return names;
}

const std::vector<std::unique_ptr<IndexEntry>>* Database::IndexesOn(
    const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : &it->second.indexes;
}

const IndexEntry* Database::FindIndex(const std::string& table,
                                      const std::vector<std::string>& columns,
                                      IndexKind kind) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return nullptr;
  for (const auto& entry : it->second.indexes) {
    if (entry->def.kind != kind) continue;
    if (entry->def.columns.size() < columns.size()) continue;
    bool match = true;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (entry->def.columns[i] != columns[i]) {
        match = false;
        break;
      }
    }
    // For equality use the prefix; exact-length match preferred but any
    // prefix match works for lookups on the leading columns.
    if (match && (kind == IndexKind::kBTree ||
                  entry->def.columns.size() == columns.size())) {
      return entry.get();
    }
  }
  return nullptr;
}

const IndexEntry* Database::FindIndexByName(
    const std::string& index_name) const {
  for (const auto& [name, info] : tables_) {
    for (const auto& entry : info.indexes) {
      if (entry->def.name == index_name) return entry.get();
    }
  }
  return nullptr;
}

// --- WAL replay --------------------------------------------------------

Status Database::ReplayRecord(std::string_view payload) {
  BinaryReader r(payload);
  XQ_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  switch (static_cast<Op>(tag)) {
    case Op::kCreateTable: {
      XQ_ASSIGN_OR_RETURN(std::string name, r.GetString());
      XQ_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(&r));
      return CreateTableInternal(name, std::move(schema));
    }
    case Op::kDropTable: {
      XQ_ASSIGN_OR_RETURN(std::string name, r.GetString());
      return DropTableInternal(name);
    }
    case Op::kCreateIndex: {
      XQ_ASSIGN_OR_RETURN(IndexDef def, DecodeIndexDef(&r));
      return CreateIndexInternal(def);
    }
    case Op::kDropIndex: {
      XQ_ASSIGN_OR_RETURN(std::string name, r.GetString());
      return DropIndexInternal(name);
    }
    case Op::kInsert: {
      XQ_ASSIGN_OR_RETURN(std::string table, r.GetString());
      XQ_ASSIGN_OR_RETURN(Tuple tuple, DecodeTuple(&r));
      return InsertInternal(table, std::move(tuple)).ok()
                 ? Status::OK()
                 : Status::Corruption("replay insert failed for " + table);
    }
    case Op::kDelete: {
      XQ_ASSIGN_OR_RETURN(std::string table, r.GetString());
      XQ_ASSIGN_OR_RETURN(uint64_t row, r.GetU64());
      return DeleteInternal(table, row);
    }
    case Op::kUpdate: {
      XQ_ASSIGN_OR_RETURN(std::string table, r.GetString());
      XQ_ASSIGN_OR_RETURN(uint64_t row, r.GetU64());
      XQ_ASSIGN_OR_RETURN(Tuple tuple, DecodeTuple(&r));
      return UpdateInternal(table, row, std::move(tuple));
    }
    case Op::kSetStats: {
      // Replaying DML ahead of this record re-inflates the staleness
      // counter; SetStatsInternal zeroes it, so the recovered counter
      // matches the pre-crash state (WAL order == original order).
      XQ_ASSIGN_OR_RETURN(std::string table, r.GetString());
      XQ_ASSIGN_OR_RETURN(TableStats stats, DecodeTableStats(&r));
      return SetStatsInternal(table, std::move(stats));
    }
  }
  return Status::Corruption("bad WAL op tag " + std::to_string(tag));
}

Result<Database::WalRecordSummary> Database::SummarizeWalRecord(
    std::string_view payload) {
  BinaryReader r(payload);
  WalRecordSummary s;
  XQ_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  switch (static_cast<Op>(tag)) {
    case Op::kCreateTable:
    case Op::kDropTable: {
      XQ_ASSIGN_OR_RETURN(s.table, r.GetString());
      return s;
    }
    case Op::kCreateIndex: {
      XQ_ASSIGN_OR_RETURN(IndexDef def, DecodeIndexDef(&r));
      s.table = def.table;
      return s;
    }
    case Op::kDropIndex:
      return s;  // only the index name is recorded; no single table
    case Op::kInsert: {
      s.is_dml = true;
      s.is_insert_or_update = true;
      XQ_ASSIGN_OR_RETURN(s.table, r.GetString());
      XQ_ASSIGN_OR_RETURN(s.tuple, DecodeTuple(&r));
      return s;
    }
    case Op::kDelete: {
      s.is_dml = true;
      XQ_ASSIGN_OR_RETURN(s.table, r.GetString());
      XQ_ASSIGN_OR_RETURN(s.row, r.GetU64());
      s.has_row = true;
      return s;
    }
    case Op::kUpdate: {
      s.is_dml = true;
      s.is_insert_or_update = true;
      XQ_ASSIGN_OR_RETURN(s.table, r.GetString());
      XQ_ASSIGN_OR_RETURN(s.row, r.GetU64());
      s.has_row = true;
      XQ_ASSIGN_OR_RETURN(s.tuple, DecodeTuple(&r));
      return s;
    }
    case Op::kSetStats: {
      s.is_stats = true;
      XQ_ASSIGN_OR_RETURN(s.table, r.GetString());
      return s;
    }
  }
  return Status::Corruption("bad WAL op tag " + std::to_string(tag));
}

// --- snapshots ---------------------------------------------------------

void Database::EncodeStateBody(BinaryWriter* body_ptr) const {
  BinaryWriter& body = *body_ptr;
  body.PutU64(last_lsn_.load(std::memory_order_acquire));
  body.PutU32(static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, info] : tables_) {
    body.PutString(name);
    EncodeSchema(info.table->schema(), &body);
    // Persist every slot (including tombstones) so RowIds survive. Only
    // the latest committed version of each slot is written: epochs and
    // superseded versions are runtime state and restart at 1 on Open.
    size_t slots = info.table->num_slots();
    body.PutU64(slots);
    for (RowId row = 0; row < slots; ++row) {
      bool live = info.table->IsLive(row);
      body.PutU8(live ? 1 : 0);
      if (live) {
        auto tuple = info.table->Get(row);
        EncodeTuple(**tuple, &body);
      }
    }
    body.PutU32(static_cast<uint32_t>(info.indexes.size()));
    for (const auto& entry : info.indexes) {
      EncodeIndexDef(entry->def, &body);
    }
    std::shared_ptr<const TableStats> stats;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats = info.stats;
    }
    body.PutU8(stats != nullptr ? 1 : 0);
    if (stats != nullptr) {
      EncodeTableStats(*stats, &body);
      body.PutU64(
          info.mutations_since_analyze.load(std::memory_order_relaxed));
    }
  }
}

std::string Database::EncodeState() const {
  BinaryWriter body;
  EncodeStateBody(&body);
  return body.TakeBuffer();
}

Status Database::WriteSnapshot(const std::string& path) const {
  BinaryWriter body;
  EncodeStateBody(&body);
  BinaryWriter file;
  file.PutString(kSnapshotMagic);
  file.PutU32(Crc32(body.buffer()));
  file.PutString(body.buffer());

  std::string tmp = path + ".tmp";
  XQ_FAULT_POINT("db.snapshot.write");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot write snapshot " + tmp);
    out.write(file.buffer().data(),
              static_cast<std::streamsize>(file.buffer().size()));
    if (!out) return Status::IoError("snapshot write failed " + tmp);
  }
  // Crashing between write and rename leaves only the .tmp behind; the old
  // snapshot stays authoritative, so recovery is unaffected.
  XQ_FAULT_POINT("db.snapshot.rename");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IoError("snapshot rename failed: " + ec.message());
  return Status::OK();
}

Status Database::LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot read snapshot " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  BinaryReader file(data);
  XQ_ASSIGN_OR_RETURN(std::string magic, file.GetString());
  const bool v1 = magic == kSnapshotMagicV1;
  if (magic != kSnapshotMagic && !v1) {
    return Status::Corruption("bad snapshot magic in " + path);
  }
  XQ_ASSIGN_OR_RETURN(uint32_t crc, file.GetU32());
  XQ_ASSIGN_OR_RETURN(std::string body, file.GetString());
  if (Crc32(body) != crc) {
    return Status::Corruption("snapshot checksum mismatch in " + path);
  }
  BinaryReader r(body);
  uint64_t base_lsn = 0;
  XQ_RETURN_IF_ERROR(DecodeStateBody(&r, /*has_lsn=*/!v1, &base_lsn));
  last_lsn_.store(base_lsn, std::memory_order_release);
  return Status::OK();
}

Status Database::DecodeStateBody(BinaryReader* r_ptr, bool has_lsn,
                                 uint64_t* base_lsn) {
  BinaryReader& r = *r_ptr;
  *base_lsn = 0;
  if (has_lsn) {
    XQ_ASSIGN_OR_RETURN(*base_lsn, r.GetU64());
  }
  XQ_ASSIGN_OR_RETURN(uint32_t ntables, r.GetU32());
  for (uint32_t t = 0; t < ntables; ++t) {
    XQ_ASSIGN_OR_RETURN(std::string name, r.GetString());
    XQ_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(&r));
    XQ_RETURN_IF_ERROR(CreateTableInternal(name, std::move(schema)));
    Table* table = tables_.find(name)->second.table.get();
    XQ_ASSIGN_OR_RETURN(uint64_t slots, r.GetU64());
    for (uint64_t row = 0; row < slots; ++row) {
      XQ_ASSIGN_OR_RETURN(uint8_t live, r.GetU8());
      if (live != 0) {
        XQ_ASSIGN_OR_RETURN(Tuple tuple, DecodeTuple(&r));
        table->RestoreSlot(std::move(tuple), /*live=*/true, write_epoch());
      } else {
        table->RestoreSlot(Tuple{}, /*live=*/false, write_epoch());
      }
    }
    XQ_ASSIGN_OR_RETURN(uint32_t nindexes, r.GetU32());
    for (uint32_t i = 0; i < nindexes; ++i) {
      XQ_ASSIGN_OR_RETURN(IndexDef def, DecodeIndexDef(&r));
      XQ_RETURN_IF_ERROR(CreateIndexInternal(def));
    }
    XQ_ASSIGN_OR_RETURN(uint8_t has_stats, r.GetU8());
    if (has_stats != 0) {
      XQ_ASSIGN_OR_RETURN(TableStats stats, DecodeTableStats(&r));
      XQ_RETURN_IF_ERROR(SetStatsInternal(name, std::move(stats)));
      XQ_ASSIGN_OR_RETURN(uint64_t mutations, r.GetU64());
      tables_.find(name)->second.mutations_since_analyze.store(
          mutations, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) return Status::OK();
  XQ_RETURN_IF_ERROR(WriteSnapshot(dir_ + "/" + kSnapshotFile));
  return wal_->Reset();
}

// --- replication -------------------------------------------------------

Result<uint64_t> Database::InstallReplicaState(std::string_view state_body) {
  uint64_t base_lsn = 0;
  {
    // Catalog surgery: wait out every live snapshot, then rebuild.
    std::unique_lock<std::shared_mutex> barrier(ddl_latch_);
    tables_.clear();
    BinaryReader r(state_body);
    XQ_RETURN_IF_ERROR(DecodeStateBody(&r, /*has_lsn=*/true, &base_lsn));
  }
  PublishLsn(base_lsn);
  // The installed rows were stamped at write_epoch(): the epoch counter
  // keeps rising monotonically across a bootstrap, so result-cache
  // entries keyed on older epochs can never alias the new state.
  MarkDirty();
  if (wal_ != nullptr) {
    // Persist the bootstrap as a checkpoint: a replica restart recovers
    // from the installed snapshot plus whatever it applied after, instead
    // of whatever stale state the directory held before.
    wal_->set_next_lsn(base_lsn + 1);
    XQ_RETURN_IF_ERROR(Checkpoint());
  }
  if (guard_depth_ == 0) FinishWriteBatch();
  return base_lsn;
}

Status Database::ApplyReplicated(uint64_t lsn, std::string_view payload) {
  const uint64_t expected = last_lsn_.load(std::memory_order_relaxed) + 1;
  if (lsn != expected) {
    return Status::Corruption("replication lsn gap: got " +
                              std::to_string(lsn) + ", expected " +
                              std::to_string(expected));
  }
  {
    // Shipped DDL records mutate the catalog: take the snapshot barrier
    // the way the public DDL entry points do. (DML records stamp
    // versions and need no barrier.)
    std::unique_lock<std::shared_mutex> barrier;
    if (!payload.empty() &&
        IsDdlOp(static_cast<uint8_t>(static_cast<unsigned char>(payload[0])))) {
      barrier = std::unique_lock<std::shared_mutex>(ddl_latch_);
    }
    XQ_RETURN_IF_ERROR(ReplayRecord(payload));
  }
  MarkDirty();
  // Re-log locally: advances the LSN to exactly `lsn`, makes the record
  // durable on durable replicas, and feeds any chained sink (cascading
  // replication falls out for free).
  XQ_RETURN_IF_ERROR(Log(payload));
  if (guard_depth_ == 0) FinishWriteBatch();
  return Status::OK();
}

}  // namespace xomatiq::rel
