#ifndef XOMATIQ_RELATIONAL_SCHEMA_H_
#define XOMATIQ_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace xomatiq::rel {

// One column definition.
struct Column {
  std::string name;
  ValueType type = ValueType::kText;
  bool not_null = false;
};

// Ordered column list of a table or of an intermediate executor result.
// Column lookup is by (optionally qualified) name.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  // Index of column `name`. Accepts either the bare column name or a
  // "qualifier.column" form when the stored name carries that qualifier.
  // Returns nullopt when absent or ambiguous.
  std::optional<size_t> FindColumn(std::string_view name) const;

  // Like FindColumn but error-reporting.
  common::Result<size_t> ResolveColumn(std::string_view name) const;

  // Schema for the concatenation [left, right], prefixing nothing; callers
  // qualify names beforehand when needed.
  static Schema Concat(const Schema& left, const Schema& right);

  // Returns a copy whose column names are prefixed "alias.name" (bare
  // names without an existing qualifier only).
  Schema Qualified(const std::string& alias) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

// A row of values, positionally matching some Schema.
using Tuple = std::vector<Value>;

// Renders a tuple as comma-separated values (debug/display).
std::string TupleToString(const Tuple& tuple);

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_SCHEMA_H_
