#ifndef XOMATIQ_RELATIONAL_VALUE_H_
#define XOMATIQ_RELATIONAL_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"

namespace xomatiq::rel {

// Column / value type. TEXT covers both annotation strings and biological
// sequence payloads; the shredder routes them to distinct tables (paper
// §2.2), the engine itself is agnostic.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kText = 3,
};

std::string_view ValueTypeName(ValueType type);

// A single SQL value. Small, copyable; NULL compares ordered-first (like
// Oracle's NULLS FIRST) under Compare but never equal under SQL equality
// (callers handle three-valued logic above this layer). Text payloads are
// immutable and shared, so copying a Value is O(1) — join operators
// concatenate wide tuples freely without copying strings.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value Text(std::string v) {
    return Value(Data(std::make_shared<const std::string>(std::move(v))));
  }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  // Accessors assume the matching type; assert in debug builds.
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsText() const {
    return *std::get<std::shared_ptr<const std::string>>(data_);
  }

  // Numeric view: INT widens to double. Returns TypeError for TEXT/NULL.
  common::Result<double> ToNumeric() const;

  // Best-effort coercion of this value to `target`; TEXT->numeric parses,
  // numeric->TEXT formats. NULL stays NULL.
  common::Result<Value> CastTo(ValueType target) const;

  // Total order used by indexes and ORDER BY:
  // NULL < numerics (INT and DOUBLE compared as numbers) < TEXT.
  // Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  bool operator==(const Value& other) const {
    return Compare(*this, other) == 0;
  }
  bool operator<(const Value& other) const {
    return Compare(*this, other) < 0;
  }

  // Stable hash consistent with Compare equality (INT 3 and DOUBLE 3.0
  // hash identically).
  size_t Hash() const;

  // Display form: NULL, integer, shortest round-trip double, raw text.
  std::string ToString() const;

 private:
  using Data = std::variant<std::monostate, int64_t, double,
                            std::shared_ptr<const std::string>>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

// Composite key for multi-column indexes; lexicographic Value order.
using CompositeKey = std::vector<Value>;

int CompareCompositeKeys(const CompositeKey& a, const CompositeKey& b);

struct CompositeKeyLess {
  bool operator()(const CompositeKey& a, const CompositeKey& b) const {
    return CompareCompositeKeys(a, b) < 0;
  }
};

struct CompositeKeyHasher {
  size_t operator()(const CompositeKey& k) const;
};

struct CompositeKeyEq {
  bool operator()(const CompositeKey& a, const CompositeKey& b) const {
    return CompareCompositeKeys(a, b) == 0;
  }
};

}  // namespace xomatiq::rel

#endif  // XOMATIQ_RELATIONAL_VALUE_H_
