#include "relational/schema.h"

#include "common/string_util.h"

namespace xomatiq::rel {

using common::Result;
using common::Status;

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  std::optional<size_t> found;
  // Exact match first (covers already-qualified lookups).
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  // Bare-name match against qualified stored names ("t.col" matches "col").
  for (size_t i = 0; i < columns_.size(); ++i) {
    const std::string& stored = columns_[i].name;
    size_t dot = stored.rfind('.');
    if (dot != std::string::npos && stored.compare(dot + 1, std::string::npos,
                                                   name.data(), name.size()) == 0) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

Result<size_t> Schema::ResolveColumn(std::string_view name) const {
  auto idx = FindColumn(name);
  if (!idx.has_value()) {
    return Status::NotFound("column not found or ambiguous: " +
                            std::string(name) + " in " + ToString());
  }
  return *idx;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::Qualified(const std::string& alias) const {
  std::vector<Column> cols = columns_;
  for (Column& c : cols) {
    if (c.name.find('.') == std::string::npos) {
      c.name = alias + "." + c.name;
    }
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

std::string TupleToString(const Tuple& tuple) {
  std::string out;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple[i].ToString();
  }
  return out;
}

}  // namespace xomatiq::rel
