// Experiments F8 + C5 (paper Fig 8, §4 SRS comparison): the keyword-based
// search mode. XomatiQ evaluates contains(..., any) through the inverted
// keyword index of the shredded store; SRS answers from its per-field
// token indexes (but only over pre-declared fields); the native-DOM
// alternative walks every document.
//
// Paper expectation: XomatiQ matches SRS's indexed lookup speed while
// remaining ad-hoc (any element, any level), and both beat the full DOM
// scan by orders of magnitude as the corpus grows.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace xomatiq {
namespace {

using benchutil::GetNativeStore;
using benchutil::GetSrs;
using benchutil::GetWarehouse;
using benchutil::Unwrap;

// Full Fig 8 cross-database keyword query through XomatiQ.
void BM_Fig8_XomatiQ(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(benchutil::Fig8Query()),
                         "fig8");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig8_XomatiQ)->Arg(100)->Arg(400)->Arg(1600);

// Single-database keyword leg, XomatiQ (inverted index path).
void BM_KeywordLeg_XomatiQ(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  const char* query = R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE contains($a, "cdc6", any)
RETURN $a//embl_accession_number)";
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(query), "leg");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_KeywordLeg_XomatiQ)->Arg(100)->Arg(400)->Arg(1600);

// The same leg on SRS: index lookup across its pre-declared fields.
void BM_KeywordLeg_Srs(benchmark::State& state) {
  auto* srs = GetSrs(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto hits = Unwrap(srs->LookupAnyField("EMBL", "cdc6"), "srs");
    rows = hits.size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_KeywordLeg_Srs)->Arg(100)->Arg(400)->Arg(1600);

// The same leg on the native DOM store: walk every document subtree.
void BM_KeywordLeg_NativeDom(benchmark::State& state) {
  auto* store = GetNativeStore(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto hits = store->KeywordSearch("hlx_embl.inv", "cdc6");
    rows = hits.size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_KeywordLeg_NativeDom)->Arg(100)->Arg(400)->Arg(1600);

// SRS's expressiveness ceiling, demonstrated as a measurement: a query on
// an attribute SRS did not pre-index is impossible there (returns the
// Unsupported error immediately), while XomatiQ evaluates it ad hoc. This
// quantifies the §4 claim rather than a speedup.
void BM_UnindexedAttributeQuery_XomatiQ(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  // Organism is not one of SRS's indexed fields in this setup.
  const char* query = R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE contains($a//organism, "Drosophila")
RETURN $a//embl_accession_number)";
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(query), "organism");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_UnindexedAttributeQuery_XomatiQ)->Arg(400);

void BM_UnindexedAttributeQuery_SrsRejects(benchmark::State& state) {
  auto* srs = GetSrs(static_cast<size_t>(state.range(0)));
  // "ft" (feature qualifiers) was never declared as an indexed field.
  size_t errors = 0;
  for (auto _ : state) {
    auto result = srs->Lookup("EMBL", "ft", "Drosophila");
    if (!result.ok()) ++errors;
    benchmark::DoNotOptimize(result);
  }
  state.counters["unsupported"] = errors > 0 ? 1 : 0;
}
BENCHMARK(BM_UnindexedAttributeQuery_SrsRejects)->Arg(400);

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  std::printf(
      "bench_keyword - experiments F8 + C5 (paper Fig 8, §4): keyword "
      "search, XomatiQ vs SRS vs native DOM.\nExpectation: XomatiQ and SRS "
      "stay ~flat with corpus size (index lookups); the DOM scan grows "
      "linearly; SRS cannot answer non-pre-indexed queries at all.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
