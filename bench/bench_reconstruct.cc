// Experiment C3 (paper §3.3): "reconstruction of entire large XML
// documents from the tuples is expensive compared to the query processing
// time in the RDBMS" - the reason XomatiQ offers the plain table view as
// its default result rendering. Measures full-document reconstruction,
// the tagger (results -> XML), and the table renderer against the query
// itself.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xml/writer.h"
#include "xomatiq/tagger.h"

namespace xomatiq {
namespace {

using benchutil::GetWarehouse;
using benchutil::Unwrap;

// The reference point: Fig 9 query latency (returns two columns).
void BM_QueryOnly(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(benchutil::Fig9Query()),
                         "query");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_QueryOnly)->Arg(400)->Arg(1600);

// Query + table rendering (the default "simple table format" view).
void BM_QueryPlusTableView(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(benchutil::Fig9Query()),
                         "query");
    std::string table = result.ToTable();
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_QueryPlusTableView)->Arg(400)->Arg(1600);

// Query + tagger (results re-structured into XML, §3.3).
void BM_QueryPlusXmlTagging(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(benchutil::Fig9Query()),
                         "query");
    xml::XmlDocument tagged = fixture->xomatiq->ResultsAsXml(result);
    std::string text = xml::WriteXml(tagged);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_QueryPlusXmlTagging)->Arg(400)->Arg(1600);

// Query + full reconstruction of every matching document (what the GUI
// would do if every hit were opened in the XML tree view at once).
void BM_QueryPlusFullReconstruction(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  size_t reconstructed = 0;
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(benchutil::Fig9Query()),
                         "query");
    reconstructed = 0;
    for (const auto& row : result.rows) {
      auto doc_id = fixture->warehouse->FindDocument(
          "enzyme:" + row[0].AsText());
      if (!doc_id.ok()) continue;
      auto doc = Unwrap(fixture->xomatiq->ViewDocument(*doc_id),
                        "reconstruct");
      std::string text = xml::WriteXml(doc);
      benchmark::DoNotOptimize(text);
      ++reconstructed;
    }
  }
  state.counters["docs"] = static_cast<double>(reconstructed);
}
BENCHMARK(BM_QueryPlusFullReconstruction)->Arg(400)->Arg(1600);

// Reconstruction of one document in isolation, per source (EMBL documents
// carry sequences and feature tables, so they are larger).
void BM_ReconstructOneEnzymeDoc(benchmark::State& state) {
  auto* fixture = GetWarehouse(400);
  auto ids = Unwrap(fixture->warehouse->DocumentsIn("hlx_enzyme.DEFAULT"),
                    "ids");
  for (auto _ : state) {
    auto doc = Unwrap(fixture->warehouse->ReconstructDocument(ids[0]),
                      "reconstruct");
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_ReconstructOneEnzymeDoc);

void BM_ReconstructOneEmblDoc(benchmark::State& state) {
  auto* fixture = GetWarehouse(400);
  auto ids = Unwrap(fixture->warehouse->DocumentsIn("hlx_embl.inv"), "ids");
  for (auto _ : state) {
    auto doc = Unwrap(fixture->warehouse->ReconstructDocument(ids[0]),
                      "reconstruct");
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_ReconstructOneEmblDoc);

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  std::printf(
      "bench_reconstruct - experiment C3 (paper §3.3): result rendering "
      "cost.\nExpectation: table view ~= query cost; XML tagging slightly "
      "above; full per-hit document reconstruction dominates everything "
      "(the paper's stated reason for defaulting to the table view).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
