// Experiment C6 (paper §1.1): the warehousing argument - "apart from the
// obvious advantages of performance, flexibility and availability ...".
// Compares answering a query from the warm local warehouse against the
// federated alternative the paper rejects: fetching the remote flat file
// and evaluating on the fly for every query (transport simulated as an
// in-memory copy, so the measured gap is a *lower bound* - real FTP/HTTP
// latency only widens it).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sql/expr_eval.h"

namespace xomatiq {
namespace {

using benchutil::GetWarehouse;
using benchutil::ScaledOptions;
using benchutil::Unwrap;

const std::string& RemoteEnzymeFile(size_t n) {
  static auto* cache = new std::map<size_t, std::string>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
    it = cache->emplace(n, datagen::ToEnzymeFlatFile(corpus)).first;
  }
  return it->second;
}

// Warehoused: the Fig 9 query against the warm local store.
void BM_WarehousedQuery(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(benchutil::Fig9Query()),
                         "query");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_WarehousedQuery)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// On-the-fly: per query, re-fetch + parse the remote flat file, transform
// to XML, and evaluate directly (no warehouse, no indexes).
void BM_OnTheFlyRemoteQuery(benchmark::State& state) {
  const std::string& remote = RemoteEnzymeFile(
      static_cast<size_t>(state.range(0)));
  hounds::EnzymeXmlTransformer transformer;
  size_t rows = 0;
  for (auto _ : state) {
    auto docs = Unwrap(transformer.Transform(remote), "transform");
    rows = 0;
    for (const auto& doc : docs) {
      for (const xml::XmlNode* activity :
           doc.document.root()->Descendants("catalytic_activity")) {
        if (sql::MatchContains(activity->Text(), "ketone")) {
          ++rows;
          break;
        }
      }
    }
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_OnTheFlyRemoteQuery)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// Amortization: warehouse build cost + k queries vs k on-the-fly queries.
// Reported as the cost of a session of `range(0)` queries.
void BM_WarehouseSession(benchmark::State& state) {
  const std::string& remote = RemoteEnzymeFile(400);
  hounds::EnzymeXmlTransformer transformer;
  int64_t queries = state.range(0);
  for (auto _ : state) {
    auto db = rel::Database::OpenInMemory();
    auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open");
    Unwrap(warehouse->LoadSource("hlx_enzyme.DEFAULT", transformer, remote),
           "load");
    xq::XomatiQ xomatiq(warehouse.get());
    for (int64_t q = 0; q < queries; ++q) {
      auto result = Unwrap(xomatiq.Execute(benchutil::Fig9Query()), "q");
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetItemsProcessed(queries * state.iterations());
}
BENCHMARK(BM_WarehouseSession)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_OnTheFlySession(benchmark::State& state) {
  const std::string& remote = RemoteEnzymeFile(400);
  hounds::EnzymeXmlTransformer transformer;
  int64_t queries = state.range(0);
  for (auto _ : state) {
    for (int64_t q = 0; q < queries; ++q) {
      auto docs = Unwrap(transformer.Transform(remote), "transform");
      size_t rows = 0;
      for (const auto& doc : docs) {
        for (const xml::XmlNode* activity :
             doc.document.root()->Descendants("catalytic_activity")) {
          if (sql::MatchContains(activity->Text(), "ketone")) {
            ++rows;
            break;
          }
        }
      }
      benchmark::DoNotOptimize(rows);
    }
  }
  state.SetItemsProcessed(queries * state.iterations());
}
BENCHMARK(BM_OnTheFlySession)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  std::printf(
      "bench_warehouse - experiment C6 (paper §1.1): warehousing vs "
      "on-the-fly remote access.\nExpectation: per-query warehouse cost is "
      "orders of magnitude below re-fetch+re-parse; the build cost "
      "amortizes within a handful of queries (and real network transport, "
      "not simulated here, widens the gap further).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
