// Closed-loop service benchmark: N client threads over TCP against one
// QueryServer, measuring throughput and request-latency percentiles for a
// cache-friendly XQuery workload, a cache-defeating SQL workload, and a
// 50/50 mix — plus the overload rejection rate of a deliberately tiny
// admission queue. Writes BENCH_server.json.
//
//   bench_server [corpus_n] [clients] [seconds_per_phase]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/client.h"
#include "common/metrics.h"
#include "common/query_log.h"
#include "server/server.h"

namespace {

using namespace xomatiq;
using benchutil::JsonReport;
using benchutil::Unwrap;
using Clock = std::chrono::steady_clock;

struct PhaseResult {
  size_t requests = 0;
  size_t errors = 0;
  size_t rejected = 0;  // kOverloaded responses
  size_t cached = 0;
  double seconds = 0;
  std::vector<double> latencies_us;

  double Percentile(double p) const {
    return common::PercentileOfSamples(latencies_us, p);
  }
};

// Each client runs `make_query(i)` in a closed loop (next request only
// after the previous response) for `seconds`.
template <typename MakeQuery>
PhaseResult RunPhase(uint16_t port, size_t clients, double seconds,
                     MakeQuery make_query) {
  std::atomic<bool> stop{false};
  std::vector<PhaseResult> per_client(clients);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = cli::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        per_client[c].errors = 1;
        return;
      }
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto [mode, text] = make_query(c * 1000000 + i++);
        auto t0 = Clock::now();
        auto response = client->Execute(mode, text);
        double us = std::chrono::duration<double, std::micro>(Clock::now() -
                                                              t0)
                        .count();
        PhaseResult& r = per_client[c];
        ++r.requests;
        r.latencies_us.push_back(us);
        if (!response.ok()) {
          ++r.errors;
        } else if (response->code == common::StatusCode::kOverloaded) {
          ++r.rejected;
        } else if (!response->ok()) {
          ++r.errors;
        } else if (response->cached()) {
          ++r.cached;
        }
      }
    });
  }
  auto start = Clock::now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  PhaseResult total;
  total.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  for (PhaseResult& r : per_client) {
    total.requests += r.requests;
    total.errors += r.errors;
    total.rejected += r.rejected;
    total.cached += r.cached;
    total.latencies_us.insert(total.latencies_us.end(),
                              r.latencies_us.begin(), r.latencies_us.end());
  }
  return total;
}

void Report(JsonReport* report, const char* name, const PhaseResult& r,
            size_t clients) {
  double qps = r.seconds > 0 ? static_cast<double>(r.requests) / r.seconds : 0;
  std::printf(
      "%-16s %8zu req %9.0f req/s  p50 %7.0fus  p95 %7.0fus  p99 %7.0fus  "
      "cached %5.1f%%  rejected %5.1f%%  errors %zu\n",
      name, r.requests, qps, r.Percentile(0.50), r.Percentile(0.95),
      r.Percentile(0.99),
      r.requests ? 100.0 * static_cast<double>(r.cached) /
                       static_cast<double>(r.requests)
                 : 0,
      r.requests ? 100.0 * static_cast<double>(r.rejected) /
                       static_cast<double>(r.requests)
                 : 0,
      r.errors);
  report->Add(name,
              {{"clients", static_cast<double>(clients)},
               {"requests", static_cast<double>(r.requests)},
               {"qps", qps},
               {"p50_us", r.Percentile(0.50)},
               {"p95_us", r.Percentile(0.95)},
               {"p99_us", r.Percentile(0.99)},
               {"cached_fraction",
                r.requests ? static_cast<double>(r.cached) /
                                 static_cast<double>(r.requests)
                           : 0},
               {"rejected_fraction",
                r.requests ? static_cast<double>(r.rejected) /
                                 static_cast<double>(r.requests)
                           : 0},
               {"errors", static_cast<double>(r.errors)}});
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 1000;
  size_t clients = argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 8;
  double seconds = argc > 3 ? std::atof(argv[3]) : 2.0;

  auto* fx = benchutil::GetWarehouse(n);
  JsonReport report("BENCH_server.json");

  const std::string xq_query = benchutil::Fig9Query();
  auto uncached_sql = [](size_t i) {
    // Distinct text every request defeats the cache while keeping the
    // work constant (node_ids are nonnegative, so the predicate is
    // always true and the query still scans).
    return std::pair(srv::RequestMode::kSql,
                     "SELECT COUNT(*) FROM xml_node WHERE node_id <> -" +
                         std::to_string(i + 1));
  };

  {
    srv::ServerOptions options;
    options.workers = 4;
    options.max_queue = 256;
    options.service.cache = std::make_shared<srv::ResultCache>(512);
    srv::QueryServer server(fx->warehouse.get(), options);
    benchutil::Check(server.Start(), "start server");
    std::printf("bench_server: corpus n=%zu, %zu clients, %.1fs/phase, "
                "port %u\n\n",
                n, clients, seconds, server.port());

    Report(&report, "cached_xq",
           RunPhase(server.port(), clients, seconds,
                    [&](size_t) {
                      return std::pair(srv::RequestMode::kXq, xq_query);
                    }),
           clients);
    Report(&report, "uncached_sql",
           RunPhase(server.port(), clients, seconds, uncached_sql), clients);
    Report(&report, "mixed_50_50",
           RunPhase(server.port(), clients, seconds,
                    [&](size_t i) {
                      if (i % 2 == 0) {
                        return std::pair(srv::RequestMode::kXq, xq_query);
                      }
                      return uncached_sql(i);
                    }),
           clients);
    server.Shutdown();
  }

  {
    // Ops-plane overhead: the same cached-read workload with the
    // observability surface fully on (HTTP admin endpoint bound, query
    // log enabled — the defaults) vs fully off. The delta is the price of
    // always-on observability on the hottest path the server has.
    double qps_on = 0, qps_off = 0;
    {
      srv::ServerOptions options;
      options.workers = 4;
      options.max_queue = 256;
      options.service.cache = std::make_shared<srv::ResultCache>(512);
      options.admin_port = 0;  // ephemeral
      common::QueryLog::Global().set_enabled(true);
      srv::QueryServer server(fx->warehouse.get(), options);
      benchutil::Check(server.Start(), "start ops-on server");
      PhaseResult r = RunPhase(server.port(), clients, seconds, [&](size_t) {
        return std::pair(srv::RequestMode::kXq, xq_query);
      });
      qps_on = r.seconds > 0 ? static_cast<double>(r.requests) / r.seconds : 0;
      Report(&report, "cached_xq_ops_on", r, clients);
      server.Shutdown();
    }
    {
      srv::ServerOptions options;
      options.workers = 4;
      options.max_queue = 256;
      options.service.cache = std::make_shared<srv::ResultCache>(512);
      common::QueryLog::Global().set_enabled(false);
      srv::QueryServer server(fx->warehouse.get(), options);
      benchutil::Check(server.Start(), "start ops-off server");
      PhaseResult r = RunPhase(server.port(), clients, seconds, [&](size_t) {
        return std::pair(srv::RequestMode::kXq, xq_query);
      });
      qps_off = r.seconds > 0 ? static_cast<double>(r.requests) / r.seconds : 0;
      Report(&report, "cached_xq_ops_off", r, clients);
      server.Shutdown();
      common::QueryLog::Global().set_enabled(true);
    }
    double overhead_pct =
        qps_off > 0 ? 100.0 * (qps_off - qps_on) / qps_off : 0;
    std::printf("%-16s %.2f%% (on %.0f req/s vs off %.0f req/s)\n",
                "ops_overhead", overhead_pct, qps_on, qps_off);
    report.Add("ops_plane", {{"qps_ops_on", qps_on},
                             {"qps_ops_off", qps_off},
                             {"ops_plane_overhead_pct", overhead_pct}});
  }

  {
    // Overload: one worker, a two-deep queue, and twice the clients. The
    // interesting number is the typed-rejection rate — clients always get
    // an answer instead of an unbounded queueing delay.
    srv::ServerOptions options;
    options.workers = 1;
    options.max_queue = 2;
    srv::QueryServer server(fx->warehouse.get(), options);
    benchutil::Check(server.Start(), "start overload server");
    Report(&report, "overload_tiny_queue",
           RunPhase(server.port(), clients * 2, seconds, uncached_sql),
           clients * 2);
    server.Shutdown();
  }

  if (!report.Write()) return 1;
  std::printf("\nwrote BENCH_server.json\n");
  return 0;
}
