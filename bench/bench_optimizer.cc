// Join-order optimization ablation: the same star / chain joins, written
// with their FROM clauses in the worst possible order, executed through
//
//   - the cost-based planner (kAuto over ANALYZEd tables), which is free
//     to reorder the join and pick access paths from statistics, and
//   - the kFromOrder baseline, which joins in literal FROM order — the
//     pre-optimizer behavior for a query author who guessed badly.
//
// Headline metric: speedup = from_order_ms / costed_ms per query (the
// 3-table worst-order join is expected to come back >= 2x). Emits
// BENCH_optimizer.json next to stdout for drivers.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sql/engine.h"

namespace xomatiq {
namespace {

using benchutil::Check;
using benchutil::JsonReport;
using benchutil::Unwrap;
using rel::Database;
using rel::IndexKind;
using rel::Schema;
using rel::Value;
using rel::ValueType;

// Star schema: one 20k-row fact table, two 300-row dimensions, one
// 100-row dimension carrying a selective attribute.
std::unique_ptr<Database> BuildStar(size_t fact_rows) {
  auto db = Database::OpenInMemory();
  Check(db->CreateTable("fact", Schema({{"id", ValueType::kInt, true},
                                        {"d1", ValueType::kInt, true},
                                        {"d2", ValueType::kInt, true},
                                        {"d3", ValueType::kInt, true},
                                        {"val", ValueType::kInt, true}})),
        "create fact");
  Check(db->CreateTable("dim1", Schema({{"id", ValueType::kInt, true},
                                        {"attr", ValueType::kInt, true}})),
        "create dim1");
  Check(db->CreateTable("dim2", Schema({{"id", ValueType::kInt, true},
                                        {"attr", ValueType::kInt, true}})),
        "create dim2");
  Check(db->CreateTable("dim3", Schema({{"id", ValueType::kInt, true},
                                        {"attr", ValueType::kInt, true}})),
        "create dim3");
  Check(db->CreateIndex({"dim1_id", "dim1", {"id"}, IndexKind::kHash, false}),
        "index dim1");
  Check(db->CreateIndex({"dim2_id", "dim2", {"id"}, IndexKind::kHash, false}),
        "index dim2");
  Check(db->CreateIndex({"dim3_id", "dim3", {"id"}, IndexKind::kHash, false}),
        "index dim3");
  Check(db->CreateIndex({"fact_d3", "fact", {"d3"}, IndexKind::kHash, false}),
        "index fact");
  for (int64_t i = 0; i < 300; ++i) {
    Unwrap(db->Insert("dim1", {Value::Int(i), Value::Int(i % 7)}), "dim1");
    Unwrap(db->Insert("dim2", {Value::Int(i), Value::Int(i % 5)}), "dim2");
  }
  for (int64_t i = 0; i < 100; ++i) {
    Unwrap(db->Insert("dim3", {Value::Int(i), Value::Int(i % 10)}), "dim3");
  }
  for (int64_t i = 0; i < static_cast<int64_t>(fact_rows); ++i) {
    Unwrap(db->Insert("fact",
                      {Value::Int(i), Value::Int(i % 300),
                       Value::Int((i / 3) % 300), Value::Int(i % 100),
                       Value::Int(i % 1000)}),
           "fact");
  }
  return db;
}

int64_t RunCount(sql::SqlEngine* engine, const std::string& sql) {
  auto result = Unwrap(engine->Execute(sql), "query");
  return result.rows[0][0].AsInt();
}

double BestOfMs(int reps, sql::SqlEngine* engine, const std::string& sql) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto result = Unwrap(engine->Execute(sql), "query");
    auto t1 = std::chrono::steady_clock::now();
    (void)result;
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct BenchQuery {
  const char* name;
  const char* sql;
};

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  using namespace xomatiq;
  size_t fact_rows = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 20000;
  int reps = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf(
      "bench_optimizer - cost-based join ordering vs literal FROM order.\n"
      "Every query lists its FROM clause in the worst order; the optimizer "
      "must undo the damage.\n\n");

  auto db = BuildStar(fact_rows);
  sql::SqlEngine costed(db.get());
  sql::EngineOptions from_order_opts;
  from_order_opts.planner.mode = sql::PlannerMode::kFromOrder;
  sql::SqlEngine from_order(db.get(), from_order_opts);
  Unwrap(costed.Execute("ANALYZE"), "analyze");

  const std::vector<BenchQuery> queries = {
      // The acceptance-gate query: 3-table join, both dimensions listed
      // before the fact table, so FROM order opens with a 300x300 cross
      // product.
      {"join3_worst_order",
       "SELECT COUNT(*) FROM dim1 a, dim2 b, fact f "
       "WHERE a.id = f.d1 AND b.id = f.d2 AND f.val < 100"},
      // 4-table star, all three dimensions crossed before the fact table
      // arrives; dim3's selective attribute belongs at the front.
      {"star4_worst_order",
       "SELECT COUNT(*) FROM dim1 a, dim2 b, dim3 c, fact f "
       "WHERE a.id = f.d1 AND b.id = f.d2 AND c.id = f.d3 AND c.attr = 3"},
      // Chain dim1 - fact - dim3 entered from the unfiltered end: FROM
      // order drags the whole fact table through the first join; the
      // optimizer starts at the filtered dim3 end instead.
      {"chain3_filtered_far_end",
       "SELECT COUNT(*) FROM dim1 a, fact f, dim3 c "
       "WHERE a.id = f.d1 AND c.id = f.d3 AND c.attr = 3"},
  };

  JsonReport report("BENCH_optimizer.json");
  std::printf("%-28s %12s %14s %9s\n", "query", "costed_ms", "from_order_ms",
              "speedup");
  for (const BenchQuery& q : queries) {
    int64_t costed_count = RunCount(&costed, q.sql);
    int64_t baseline_count = RunCount(&from_order, q.sql);
    if (costed_count != baseline_count) {
      std::fprintf(stderr,
                   "RESULT MISMATCH on %s: costed=%lld from_order=%lld\n",
                   q.name, static_cast<long long>(costed_count),
                   static_cast<long long>(baseline_count));
      return 1;
    }
    double costed_ms = BestOfMs(reps, &costed, q.sql);
    double baseline_ms = BestOfMs(reps, &from_order, q.sql);
    double speedup = baseline_ms / costed_ms;
    std::printf("%-28s %12.3f %14.3f %8.2fx\n", q.name, costed_ms,
                baseline_ms, speedup);
    report.Add(q.name, {{"rows", static_cast<double>(costed_count)},
                        {"costed_ms", costed_ms},
                        {"from_order_ms", baseline_ms},
                        {"speedup", speedup}});
  }

  // Show the reordered plan for the gate query so the numbers are
  // explainable from the output alone.
  auto plan = Unwrap(costed.Execute(std::string("EXPLAIN ") + queries[0].sql),
                     "explain");
  std::printf("\ncosted plan for %s:\n%s", queries[0].name,
              plan.explain_text.c_str());

  if (report.Write()) std::printf("\nwrote BENCH_optimizer.json\n");
  return 0;
}
