// Replication benchmark: read-throughput scale-up as read replicas are
// added behind a ClusterClient, and replication lag while a writer floods
// the primary. Writes BENCH_replication.json.
//
//   bench_replication [corpus_n] [clients] [seconds_per_phase]
//
// Phases:
//   reads_0_replicas .. reads_2_replicas
//       closed-loop uncached reads through a ClusterClient against the
//       primary alone, then with one and two streaming replicas — the
//       scale-up is the case for WAL shipping.
//   write_lag
//       one writer inserting at full speed on the primary while a replica
//       tails; samples applied-vs-durable lag and times final catch-up.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/client.h"
#include "client/cluster_client.h"
#include "replication/repl_server.h"
#include "replication/replica.h"
#include "server/server.h"

namespace {

using namespace xomatiq;
using benchutil::JsonReport;
using Clock = std::chrono::steady_clock;

// One read replica: database streaming from the primary plus a read-only
// query server wired the way server_main wires one.
struct Replica {
  std::unique_ptr<rel::Database> db;
  std::unique_ptr<repl::ReplicaApplier> applier;
  std::unique_ptr<hounds::Warehouse> warehouse;
  std::unique_ptr<srv::QueryServer> server;

  ~Replica() {
    if (server != nullptr) server->Shutdown();
    if (applier != nullptr) applier->Shutdown();
  }
};

std::unique_ptr<Replica> StartReplica(uint16_t primary_repl_port) {
  auto replica = std::make_unique<Replica>();
  replica->db = rel::Database::OpenInMemory();
  repl::ReplicaApplierOptions ropts;
  ropts.primary_port = primary_repl_port;
  replica->applier =
      std::make_unique<repl::ReplicaApplier>(replica->db.get(), ropts);
  benchutil::Check(replica->applier->Start(), "start applier");
  benchutil::Check(replica->applier->WaitUntilCaughtUp(60000), "catch up");
  replica->warehouse = benchutil::Unwrap(
      hounds::Warehouse::Open(replica->db.get()), "replica warehouse");
  srv::ServerOptions options;
  options.workers = 4;
  options.max_queue = 256;
  options.service.read_only = true;
  repl::ReplicaApplier* applier = replica->applier.get();
  options.service.wait_for_lsn = [applier](uint64_t lsn, uint32_t budget) {
    return applier->WaitForLsn(lsn, budget);
  };
  replica->server = std::make_unique<srv::QueryServer>(
      replica->warehouse.get(), options);
  benchutil::Check(replica->server->Start(), "start replica server");
  return replica;
}

struct PhaseResult {
  size_t requests = 0;
  size_t errors = 0;
  size_t replica_served = 0;
  size_t fallbacks = 0;
  double seconds = 0;
};

// Closed-loop uncached reads through per-thread ClusterClients.
PhaseResult RunReadPhase(const cli::ClusterOptions& copts, size_t clients,
                         double seconds) {
  std::atomic<bool> stop{false};
  std::vector<PhaseResult> per_client(clients);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      cli::ClusterClient cluster(copts);
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Distinct text every request defeats result caches, so the
        // measured scale-up is engine capacity, not cache hits.
        std::string sql =
            "SELECT COUNT(*) FROM xml_node WHERE node_id <> -" +
            std::to_string(c * 1000000 + ++i);
        auto response = cluster.Execute(common::QueryRequest::Sql(sql));
        PhaseResult& r = per_client[c];
        ++r.requests;
        if (!response.ok() || !response->ok()) ++r.errors;
      }
      per_client[c].replica_served = cluster.stats().replica_requests;
      per_client[c].fallbacks = cluster.stats().replica_fallbacks;
    });
  }
  auto start = Clock::now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  PhaseResult total;
  total.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  for (const PhaseResult& r : per_client) {
    total.requests += r.requests;
    total.errors += r.errors;
    total.replica_served += r.replica_served;
    total.fallbacks += r.fallbacks;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 300;
  size_t clients = argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 8;
  double seconds = argc > 3 ? std::atof(argv[3]) : 2.0;

  auto* fx = benchutil::GetWarehouse(n);
  JsonReport report("BENCH_replication.json");

  // Primary: writable query server plus the WAL shipper.
  srv::ServerOptions primary_options;
  primary_options.workers = 4;
  primary_options.max_queue = 256;
  srv::QueryServer primary(fx->warehouse.get(), primary_options);
  benchutil::Check(primary.Start(), "start primary");
  repl::ReplicationServer shipper(fx->db.get());
  benchutil::Check(shipper.Start(), "start shipper");

  std::vector<std::unique_ptr<Replica>> replicas;
  replicas.push_back(StartReplica(shipper.port()));
  replicas.push_back(StartReplica(shipper.port()));
  std::printf("bench_replication: corpus n=%zu, %zu clients, %.1fs/phase, "
              "primary %u, replicas %u %u\n\n",
              n, clients, seconds, primary.port(),
              replicas[0]->server->port(), replicas[1]->server->port());

  // --- read scale-up: 0, 1, 2 replicas behind the same client fleet ---
  std::vector<double> qps_by_replicas;
  for (size_t nreplicas = 0; nreplicas <= 2; ++nreplicas) {
    cli::ClusterOptions copts;
    copts.primary = {"127.0.0.1", primary.port()};
    for (size_t i = 0; i < nreplicas; ++i) {
      copts.replicas.push_back({"127.0.0.1", replicas[i]->server->port()});
    }
    PhaseResult r = RunReadPhase(copts, clients, seconds);
    double qps =
        r.seconds > 0 ? static_cast<double>(r.requests) / r.seconds : 0;
    qps_by_replicas.push_back(qps);
    std::string name =
        "reads_" + std::to_string(nreplicas) + "_replicas";
    std::printf("%-18s %8zu req %9.0f req/s  replica-served %5.1f%%  "
                "fallbacks %zu  errors %zu\n",
                name.c_str(), r.requests, qps,
                r.requests ? 100.0 * static_cast<double>(r.replica_served) /
                                 static_cast<double>(r.requests)
                           : 0,
                r.fallbacks, r.errors);
    report.Add(name,
               {{"replicas", static_cast<double>(nreplicas)},
                {"clients", static_cast<double>(clients)},
                {"requests", static_cast<double>(r.requests)},
                {"qps", qps},
                {"replica_served_fraction",
                 r.requests ? static_cast<double>(r.replica_served) /
                                  static_cast<double>(r.requests)
                            : 0},
                {"fallbacks", static_cast<double>(r.fallbacks)},
                {"errors", static_cast<double>(r.errors)}});
  }
  report.Add("read_scaleup",
             {{"qps_0_replicas", qps_by_replicas[0]},
              {"qps_1_replica", qps_by_replicas[1]},
              {"qps_2_replicas", qps_by_replicas[2]},
              {"scaleup_1_replica",
               qps_by_replicas[0] > 0
                   ? qps_by_replicas[1] / qps_by_replicas[0]
                   : 0},
              {"scaleup_2_replicas",
               qps_by_replicas[0] > 0
                   ? qps_by_replicas[2] / qps_by_replicas[0]
                   : 0}});

  // --- replication lag under write load ---
  {
    cli::Client writer = benchutil::Unwrap(
        cli::Client::Connect("127.0.0.1", primary.port()), "writer");
    auto ddl = writer.Sql("CREATE TABLE bench_lag (k INT)");
    benchutil::Check(ddl.ok() ? ddl->status() : ddl.status(),
                     "create bench_lag");
    repl::ReplicaApplier* applier = replicas[0]->applier.get();
    std::atomic<bool> stop{false};
    std::vector<double> lag_samples;
    std::thread sampler([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        lag_samples.push_back(
            static_cast<double>(applier->status().lag_records));
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
    size_t writes = 0, write_errors = 0;
    auto start = Clock::now();
    while (std::chrono::duration<double>(Clock::now() - start).count() <
           seconds) {
      auto response = writer.Sql("INSERT INTO bench_lag VALUES (" +
                                 std::to_string(writes) + ")");
      if (!response.ok() || !response->ok()) {
        ++write_errors;
      }
      ++writes;
    }
    double write_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    stop.store(true);
    sampler.join();

    auto catchup_start = Clock::now();
    bool caught_up =
        applier->WaitForLsn(fx->db->durable_lsn(), /*timeout_ms=*/60000);
    double catchup_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - catchup_start)
                            .count();
    double max_lag = 0, sum_lag = 0;
    for (double lag : lag_samples) {
      max_lag = std::max(max_lag, lag);
      sum_lag += lag;
    }
    double mean_lag =
        lag_samples.empty() ? 0 : sum_lag / static_cast<double>(lag_samples.size());
    double wps = write_seconds > 0
                     ? static_cast<double>(writes) / write_seconds
                     : 0;
    std::printf("\n%-18s %8zu writes %7.0f writes/s  lag mean %.1f max %.0f "
                "records  catch-up %.1fms  caught_up %s  errors %zu\n",
                "write_lag", writes, wps, mean_lag, max_lag, catchup_ms,
                caught_up ? "yes" : "NO", write_errors);
    report.Add("write_lag", {{"writes", static_cast<double>(writes)},
                             {"writes_per_s", wps},
                             {"mean_lag_records", mean_lag},
                             {"max_lag_records", max_lag},
                             {"catchup_ms", catchup_ms},
                             {"caught_up", caught_up ? 1.0 : 0.0},
                             {"errors", static_cast<double>(write_errors)}});
  }

  replicas.clear();
  shipper.Shutdown();
  primary.Shutdown();
  if (!report.Write()) return 1;
  std::printf("\nwrote BENCH_replication.json\n");
  return 0;
}
