// Batched-pipeline benchmark: the same plans executed tuple-at-a-time
// (the pre-batching executor, kept as baseline), batched (RowBatch +
// compiled expression programs), and with a parallel sequential scan.
// Workloads are the paper's keyword+join shape over the full generated
// corpus. Emits BENCH_pipeline.json next to stdout for drivers.
//
// Plain main (no google-benchmark) so all three modes share one plan and
// row counts can be cross-checked between modes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "exec/worker_pool.h"
#include "relational/database.h"
#include "relational/wal.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace {

using xomatiq::benchutil::GetWarehouse;
using xomatiq::benchutil::JsonReport;
using xomatiq::benchutil::Unwrap;
using xomatiq::rel::RowBatch;
using xomatiq::rel::Tuple;
using xomatiq::sql::Executor;
using xomatiq::sql::PlanNode;
using xomatiq::sql::PlanPtr;
using xomatiq::sql::Planner;
using xomatiq::sql::PlannerOptions;
using xomatiq::sql::Statement;
using xomatiq::sql::StatementKind;

struct Workload {
  std::string name;
  std::vector<std::string> sql;
};

template <typename F>
double BestOfSeconds(int reps, F&& run) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    run();
    auto t1 = std::chrono::steady_clock::now();
    double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best) best = s;
  }
  return best;
}

std::vector<PlanPtr> PlanAll(Planner* planner,
                             const std::vector<std::string>& sqls) {
  std::vector<PlanPtr> plans;
  for (const std::string& sql : sqls) {
    Statement stmt = Unwrap(xomatiq::sql::ParseStatement(sql), "parse");
    if (stmt.kind != StatementKind::kSelect) {
      std::fprintf(stderr, "workload statement is not a SELECT\n");
      std::abort();
    }
    plans.push_back(Unwrap(planner->PlanSelect(stmt.select), "plan"));
  }
  return plans;
}

size_t RunRowAtATime(Executor* exec, const std::vector<PlanPtr>& plans) {
  size_t rows = 0;
  for (const PlanPtr& plan : plans) {
    xomatiq::benchutil::Check(
        exec->ExecuteRowAtATime(*plan,
                                [&](const Tuple&) {
                                  ++rows;
                                  return true;
                                }),
        "row exec");
  }
  return rows;
}

size_t RunBatched(Executor* exec, const std::vector<PlanPtr>& plans) {
  size_t rows = 0;
  for (const PlanPtr& plan : plans) {
    xomatiq::benchutil::Check(exec->ExecuteBatched(*plan,
                                                   [&](RowBatch& batch) {
                                                     rows += batch.size();
                                                     return true;
                                                   }),
                              "batched exec");
  }
  return rows;
}

// Flattens one plan tree's EXPLAIN ANALYZE actuals into report metrics:
// op<N>_<Kind>_rows / _ms per operator, preorder. Fused children carry
// zero counters by design (their work is in the parent's numbers).
void AddOperatorStats(const PlanNode& node, int* index,
                      std::vector<std::pair<std::string, double>>* out) {
  std::string key =
      "op" + std::to_string((*index)++) + "_" +
      std::string(xomatiq::sql::PlanKindName(node.kind));
  out->emplace_back(key + "_rows", static_cast<double>(node.stats.rows_out));
  out->emplace_back(key + "_ms", static_cast<double>(node.stats.ns) / 1e6);
  for (const auto& child : node.children) {
    AddOperatorStats(*child, index, out);
  }
}

struct OverheadResult {
  double t_on;   // best-of seconds with the feature on
  double t_off;  // best-of seconds with it off
  double overhead_pct;
};

// Measures the relative cost of a feature whose true delta (~tens of ns
// per op) sits far below run-to-run filesystem and frequency jitter:
// on/off runs are paired adjacent in time with alternating order so
// drift cancels within a pair, and the median of per-pair ratios rejects
// outlier pairs entirely.
template <typename F>
OverheadResult MeasureOverhead(int pairs, F&& run) {
  run(true);  // warm-up: page cache, lazily built tables
  run(false);
  std::vector<double> ratios;
  double t_on = 1e100;
  double t_off = 1e100;
  for (int i = 0; i < pairs; ++i) {
    double a;
    double b;
    if (i % 2 == 0) {
      a = run(true);
      b = run(false);
    } else {
      b = run(false);
      a = run(true);
    }
    t_on = std::min(t_on, a);
    t_off = std::min(t_off, b);
    ratios.push_back(a / b);
  }
  std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                   ratios.end());
  return {t_on, t_off, (ratios[ratios.size() / 2] - 1.0) * 100.0};
}

// Prices the per-record CRC32-C on the write path with the checksum on
// and off (WalOptions::checksum is the bench-only escape hatch), two
// ways. The budgeted metric (wal_checksum_overhead_pct, <5%) is measured
// on the engine's real write path — Database::Insert, i.e. encode + heap
// + index maintenance + WAL append — because that is what user writes
// pay. The raw WAL append loop is also reported (append_* keys) as the
// stress ceiling: there nothing amortizes the hash, and the hardware
// CRC32-C still lands in single-digit percent of the fwrite+fflush cost.
void BenchWalChecksum(JsonReport* report, int reps) {
  constexpr size_t kRecords = 50000;
  const std::string payload(256, 'x');  // typical shredded-tuple record
  std::string path =
      (std::filesystem::temp_directory_path() / "xq_bench_wal.log").string();
  // Times only the append loop (Open/remove excluded).
  auto time_appends = [&](bool checksum) {
    std::filesystem::remove(path);
    xomatiq::rel::WalOptions options;
    options.checksum = checksum;
    auto wal =
        Unwrap(xomatiq::rel::WriteAheadLog::Open(path, options), "wal open");
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kRecords; ++i) {
      xomatiq::benchutil::Check(wal->Append(payload), "wal append");
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  int micro_reps = std::max(reps, 25);
  OverheadResult append = MeasureOverhead(micro_reps, time_appends);
  std::filesystem::remove(path);
  double append_ns_crc = append.t_on / kRecords * 1e9;
  double append_ns_plain = append.t_off / kRecords * 1e9;

  // The budgeted path: logged Database::Insert end to end.
  constexpr size_t kRows = 20000;
  std::string db_dir =
      (std::filesystem::temp_directory_path() / "xq_bench_wal_db").string();
  auto time_inserts = [&](bool checksum) {
    std::filesystem::remove_all(db_dir);
    xomatiq::rel::Database::DbOptions options;
    options.wal.checksum = checksum;
    auto db = Unwrap(xomatiq::rel::Database::Open(db_dir, options), "db open");
    xomatiq::benchutil::Check(
        db->CreateTable(
            "bench", xomatiq::rel::Schema(
                         {{"id", xomatiq::rel::ValueType::kInt, true},
                          {"body", xomatiq::rel::ValueType::kText, false}})),
        "create table");
    xomatiq::benchutil::Check(
        db->CreateIndex({"bench_id", "bench", {"id"},
                         xomatiq::rel::IndexKind::kBTree, false}),
        "create index");
    // Typical shredded-row text payload: xml_node rows are a handful of
    // ints, xml_text values average around a hundred characters.
    const std::string body(120, 'y');
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kRows; ++i) {
      xomatiq::benchutil::Check(
          db->Insert("bench", {xomatiq::rel::Value::Int(static_cast<int64_t>(i)),
                               xomatiq::rel::Value::Text(body)})
              .status(),
          "insert");
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  OverheadResult insert = MeasureOverhead(micro_reps, time_inserts);
  std::filesystem::remove_all(db_dir);
  double insert_ns_crc = insert.t_on / kRows * 1e9;
  double insert_ns_plain = insert.t_off / kRows * 1e9;

  std::printf("%-18s %11.0fns %11.0fns %21.2f%% checksum overhead\n",
              "wal_append", append_ns_crc, append_ns_plain,
              append.overhead_pct);
  std::printf("%-18s %11.0fns %11.0fns %21.2f%% checksum overhead\n",
              "logged_insert", insert_ns_crc, insert_ns_plain,
              insert.overhead_pct);
  report->Add("wal_append",
              {{"records", static_cast<double>(kRecords)},
               {"payload_bytes", static_cast<double>(payload.size())},
               {"append_checksum_ns", append_ns_crc},
               {"append_nochecksum_ns", append_ns_plain},
               {"append_overhead_pct", append.overhead_pct},
               {"insert_rows", static_cast<double>(kRows)},
               {"insert_checksum_ns", insert_ns_crc},
               {"insert_nochecksum_ns", insert_ns_plain},
               {"wal_checksum_overhead_pct", insert.overhead_pct}});
}

// Morsel-driven parallel execution at scale: join-, aggregation- and
// sort-heavy queries over a 150k-row fact table, three ways per query.
//
//   serial_ms    — plans with parallel annotation suppressed.
//   parallel_ms  — planner-chosen parallel plans on the process pool; the
//                  pool sizes itself from the host (hw - 1 workers), so on
//                  a single-core machine admission keeps every operator
//                  serial and this column tracks serial_ms instead of
//                  paying fan-out overhead. The >= 3x speedup target is
//                  only reachable on >= 4 cores.
//   forced4_ms   — the same parallel plans forced through an explicit
//                  4-worker pool regardless of host width: a diagnostic
//                  that the fan-out machinery itself runs under bench
//                  conditions, not a planner-chosen configuration.
void BenchParallelExec(JsonReport* report, int reps) {
  constexpr size_t kFactRows = 150000;
  constexpr size_t kDimRows = 50000;
  constexpr int64_t kGroups = 512;
  auto db = xomatiq::rel::Database::OpenInMemory();
  xomatiq::benchutil::Check(
      db->CreateTable("fact", xomatiq::rel::Schema(
                                  {{"id", xomatiq::rel::ValueType::kInt, true},
                                   {"k", xomatiq::rel::ValueType::kInt, false},
                                   {"grp", xomatiq::rel::ValueType::kInt, false},
                                   {"val", xomatiq::rel::ValueType::kInt,
                                    false}})),
      "create fact");
  xomatiq::benchutil::Check(
      db->CreateTable("dim", xomatiq::rel::Schema(
                                 {{"id", xomatiq::rel::ValueType::kInt, true},
                                  {"val", xomatiq::rel::ValueType::kInt,
                                   false}})),
      "create dim");
  std::mt19937 rng(1234);
  for (size_t i = 0; i < kFactRows; ++i) {
    xomatiq::benchutil::Check(
        db->Insert("fact",
                   {xomatiq::rel::Value::Int(static_cast<int64_t>(i)),
                    xomatiq::rel::Value::Int(
                        static_cast<int64_t>(rng() % kDimRows)),
                    xomatiq::rel::Value::Int(
                        static_cast<int64_t>(rng()) % kGroups),
                    xomatiq::rel::Value::Int(
                        static_cast<int64_t>(rng() % 1000))})
            .status(),
        "insert fact");
  }
  for (size_t i = 0; i < kDimRows; ++i) {
    xomatiq::benchutil::Check(
        db->Insert("dim", {xomatiq::rel::Value::Int(static_cast<int64_t>(i)),
                           xomatiq::rel::Value::Int(
                               static_cast<int64_t>(rng() % 1000))})
            .status(),
        "insert dim");
  }

  struct ParallelWorkload {
    std::string name;
    std::string sql;
  };
  const ParallelWorkload workloads[] = {
      {"parallel_join_agg",
       "SELECT f.grp, COUNT(*), SUM(f.val) FROM fact f, dim d "
       "WHERE f.k = d.id GROUP BY f.grp"},
      {"parallel_agg",
       "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) FROM fact "
       "GROUP BY grp"},
      {"parallel_sort", "SELECT k, val, id FROM fact ORDER BY val, k"},
  };

  PlannerOptions serial_options;
  serial_options.parallel_scan_threshold = static_cast<size_t>(-1);
  Planner serial_planner(db.get(), serial_options);
  Planner par_planner(db.get());  // defaults: degree = hardware width
  Executor exec(db.get());

  xomatiq::exec::WorkerPool pool4(4);
  xomatiq::sql::ExecutorOptions forced_options;
  forced_options.pool = &pool4;
  Executor forced_exec(db.get(), forced_options);
  PlannerOptions forced_plan_options;
  forced_plan_options.parallel_degree = 4;
  Planner forced_planner(db.get(), forced_plan_options);

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("%-18s %12s %12s %12s %9s %9s  (cores=%u)\n", "workload",
              "serial", "parallel", "forced4", "speedup", "rows", cores);
  for (const ParallelWorkload& w : workloads) {
    std::vector<PlanPtr> serial_plans = PlanAll(&serial_planner, {w.sql});
    std::vector<PlanPtr> par_plans = PlanAll(&par_planner, {w.sql});
    std::vector<PlanPtr> forced_plans = PlanAll(&forced_planner, {w.sql});

    size_t rows_serial = RunBatched(&exec, serial_plans);
    size_t rows_par = RunBatched(&exec, par_plans);
    size_t rows_forced = RunBatched(&forced_exec, forced_plans);
    if (rows_serial != rows_par || rows_serial != rows_forced) {
      std::fprintf(stderr, "row count mismatch in %s: %zu/%zu/%zu\n",
                   w.name.c_str(), rows_serial, rows_par, rows_forced);
      std::abort();
    }

    // More reps than the front section: serial and planner-chosen
    // parallel are expected to track each other closely (identical plans
    // on a single-core host), so the comparison needs jitter below the
    // few-percent level.
    int preps = std::max(reps, 7);
    double t_serial =
        BestOfSeconds(preps, [&] { RunBatched(&exec, serial_plans); });
    double t_par = BestOfSeconds(preps, [&] { RunBatched(&exec, par_plans); });
    double t_forced =
        BestOfSeconds(reps, [&] { RunBatched(&forced_exec, forced_plans); });
    double speedup = t_par > 0 ? t_serial / t_par : 0;

    std::printf("%-18s %11.3fms %11.3fms %11.3fms %8.2fx %9zu\n",
                w.name.c_str(), t_serial * 1e3, t_par * 1e3, t_forced * 1e3,
                speedup, rows_serial);
    report->Add(w.name, {{"rows", static_cast<double>(rows_serial)},
                         {"serial_ms", t_serial * 1e3},
                         {"parallel_ms", t_par * 1e3},
                         {"forced_pool4_ms", t_forced * 1e3},
                         {"speedup_parallel", speedup},
                         {"cores", static_cast<double>(cores)}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 2000;
  int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  auto* fx = GetWarehouse(n);
  xomatiq::rel::Database* db = fx->db.get();

  std::vector<Workload> workloads;
  // The paper's Fig 8 keyword+join query (two keyword scans joined), as
  // translated by XQ2SQL.
  workloads.push_back(
      {"fig8_keyword_join",
       Unwrap(fx->xomatiq->Translate(xomatiq::benchutil::Fig8Query()),
              "translate fig8")
           .sql});
  // Fig 11 EC-number join (value join between collections).
  workloads.push_back(
      {"fig11_ec_join",
       Unwrap(fx->xomatiq->Translate(xomatiq::benchutil::Fig11Query()),
              "translate fig11")
           .sql});
  // Full-table scan + predicate over the text store: LIKE defeats every
  // index, so this measures the raw scan/filter/project pipeline.
  workloads.push_back(
      {"scan_filter_like",
       {"SELECT node_id, value FROM xml_text WHERE value LIKE '%cdc6%'"}});
  // Scan + filter feeding an equi-join (hash/index-NL inner side).
  workloads.push_back(
      {"scan_filter_join",
       {"SELECT t.node_id, n.ordinal, t.value FROM xml_text t, xml_node n "
        "WHERE t.value LIKE '%cdc6%' AND t.node_id = n.node_id"}});
  // Headline: multi-keyword disjunction over the text store joined back to
  // the node table — the paper's keyword-query shape. The OR-of-LIKEs is
  // where compiled programs + scan fusion pay off most, and the join
  // verifies the pair-predicate path end to end.
  workloads.push_back(
      {"multi_keyword_join",
       {"SELECT t.node_id, n.ordinal FROM xml_text t, xml_node n "
        "WHERE (t.value LIKE '%cdc6%' OR t.value LIKE '%kinase%') "
        "AND t.node_id = n.node_id"}});

  Planner planner(db);
  // Parallel-scan planner: every seq scan of consequence becomes a
  // ParallelSeqScan with an explicit degree (the container may report a
  // single hardware thread; correctness is what is measured there).
  PlannerOptions par_options;
  par_options.parallel_scan_threshold = 1;
  par_options.parallel_degree = 4;
  Planner par_planner(db, par_options);
  Executor exec(db);
  // Stats-collecting executor: times the same batched plans with
  // per-operator actuals on, so the report carries both the observability
  // overhead and the per-operator breakdown.
  xomatiq::sql::ExecutorOptions stats_options;
  stats_options.collect_stats = true;
  Executor stats_exec(db, stats_options);

  JsonReport report("BENCH_pipeline.json");
  std::printf("%-18s %12s %12s %12s %9s %9s\n", "workload", "row_at_a_time",
              "batched", "parallel", "speedup", "rows");
  for (const Workload& w : workloads) {
    std::vector<PlanPtr> plans = PlanAll(&planner, w.sql);
    std::vector<PlanPtr> par_plans = PlanAll(&par_planner, w.sql);

    size_t rows_row = RunRowAtATime(&exec, plans);
    size_t rows_batch = RunBatched(&exec, plans);
    size_t rows_par = RunBatched(&exec, par_plans);
    if (rows_row != rows_batch || rows_row != rows_par) {
      std::fprintf(stderr, "row count mismatch in %s: %zu/%zu/%zu\n",
                   w.name.c_str(), rows_row, rows_batch, rows_par);
      return 1;
    }

    double t_row = BestOfSeconds(reps, [&] { RunRowAtATime(&exec, plans); });
    double t_batch = BestOfSeconds(reps, [&] { RunBatched(&exec, plans); });
    double t_par = BestOfSeconds(reps, [&] { RunBatched(&exec, par_plans); });
    // Per-operator stats collection priced with the paired-median harness
    // (budgeted at <= 5%): the true delta is a clock read and a few
    // counter bumps per batch, far below run-to-run jitter, so unpaired
    // best-of runs routinely report double-digit phantom overhead.
    OverheadResult stats =
        MeasureOverhead(std::max(reps * 3, 15), [&](bool on) {
          if (on) {
            for (const PlanPtr& plan : plans) plan->ClearStats();
          }
          auto t0 = std::chrono::steady_clock::now();
          RunBatched(on ? &stats_exec : &exec, plans);
          auto t1 = std::chrono::steady_clock::now();
          return std::chrono::duration<double>(t1 - t0).count();
        });
    double t_stats = stats.t_on;
    double speedup = t_batch > 0 ? t_row / t_batch : 0;
    double stats_overhead_pct = stats.overhead_pct;

    std::printf("%-18s %11.3fms %11.3fms %11.3fms %8.2fx %9zu\n",
                w.name.c_str(), t_row * 1e3, t_batch * 1e3, t_par * 1e3,
                speedup, rows_row);
    std::vector<std::pair<std::string, double>> metrics = {
        {"n", static_cast<double>(n)},
        {"rows", static_cast<double>(rows_row)},
        {"row_at_a_time_ms", t_row * 1e3},
        {"batched_ms", t_batch * 1e3},
        {"parallel_ms", t_par * 1e3},
        {"batched_stats_ms", t_stats * 1e3},
        {"stats_overhead_pct", stats_overhead_pct},
        {"speedup_batched", speedup}};
    // The last timed stats run left its actuals on the plan nodes; embed
    // the per-operator breakdown (single-statement workloads only keep
    // the flattened keys unambiguous — disjunct unions get per-plan
    // prefixes from the preorder index continuing across statements).
    int op_index = 0;
    for (const PlanPtr& plan : plans) {
      AddOperatorStats(*plan, &op_index, &metrics);
    }
    report.Add(w.name, std::move(metrics));
  }
  BenchParallelExec(&report, reps);
  BenchWalChecksum(&report, reps);
  if (!report.Write()) return 1;
  std::printf("wrote BENCH_pipeline.json\n");
  // Process-wide metrics snapshot (scan/WAL/index counters, stage
  // histograms) alongside the per-workload report, via the shared JSON
  // export helper.
  std::FILE* mf = std::fopen("BENCH_pipeline_metrics.json", "w");
  if (mf != nullptr) {
    std::string snap =
        xomatiq::common::MetricsRegistry::Global().Snapshot().ToJson();
    std::fwrite(snap.data(), 1, snap.size(), mf);
    std::fclose(mf);
    std::printf("wrote BENCH_pipeline_metrics.json\n");
  }
  return 0;
}
