// Experiment F6 (paper Figs 2 -> 6): the XML-Transformer stage of Data
// Hounds. Measures flat-file parsing, flat -> XML transformation, DTD
// validation, and serialization throughput per source.
//
// Paper expectation: transformation is a cheap streaming pass ("the
// algorithm looks for ID, DE, AN, ... in the lines"); validation costs
// more than transformation but both are far below shredding cost
// (bench_shred).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xomatiq {
namespace {

using benchutil::ScaledOptions;
using benchutil::Unwrap;

const std::string& EnzymeRaw(size_t n) {
  static auto* cache = new std::map<size_t, std::string>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
    it = cache->emplace(n, datagen::ToEnzymeFlatFile(corpus)).first;
  }
  return it->second;
}

const std::string& EmblRaw(size_t n) {
  static auto* cache = new std::map<size_t, std::string>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
    it = cache->emplace(n, datagen::ToEmblFlatFile(corpus)).first;
  }
  return it->second;
}

void BM_ParseEnzymeFlatFile(benchmark::State& state) {
  const std::string& raw = EnzymeRaw(static_cast<size_t>(state.range(0)));
  size_t entries = 0;
  for (auto _ : state) {
    auto parsed = flatfile::ParseEnzymeFile(raw);
    entries = parsed->size();
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(entries) * state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(raw.size()) *
                          state.iterations());
}
BENCHMARK(BM_ParseEnzymeFlatFile)->Arg(300)->Arg(1200);

void BM_TransformEnzymeToXml(benchmark::State& state) {
  const std::string& raw = EnzymeRaw(static_cast<size_t>(state.range(0)));
  hounds::EnzymeXmlTransformer transformer;
  size_t docs = 0;
  for (auto _ : state) {
    auto transformed = transformer.Transform(raw);
    docs = transformed->size();
    benchmark::DoNotOptimize(transformed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs) * state.iterations());
}
BENCHMARK(BM_TransformEnzymeToXml)->Arg(300)->Arg(1200);

void BM_TransformEmblToXml(benchmark::State& state) {
  const std::string& raw = EmblRaw(static_cast<size_t>(state.range(0)));
  hounds::EmblXmlTransformer transformer;
  size_t docs = 0;
  for (auto _ : state) {
    auto transformed = transformer.Transform(raw);
    docs = transformed->size();
    benchmark::DoNotOptimize(transformed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs) * state.iterations());
}
BENCHMARK(BM_TransformEmblToXml)->Arg(300)->Arg(1200);

void BM_ValidateAgainstDtd(benchmark::State& state) {
  hounds::EnzymeXmlTransformer transformer;
  auto dtd = Unwrap(xml::ParseDtd(transformer.dtd_text()), "dtd");
  auto docs = Unwrap(
      transformer.Transform(EnzymeRaw(static_cast<size_t>(state.range(0)))),
      "transform");
  for (auto _ : state) {
    size_t valid = 0;
    for (const auto& doc : docs) {
      std::vector<std::string> errors;
      if (dtd.Validate(doc.document, &errors)) ++valid;
    }
    benchmark::DoNotOptimize(valid);
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs.size()) *
                          state.iterations());
}
BENCHMARK(BM_ValidateAgainstDtd)->Arg(300)->Arg(1200);

void BM_SerializeFigure6Xml(benchmark::State& state) {
  xml::XmlDocument doc =
      hounds::EnzymeXmlTransformer::EntryToXml(datagen::Figure2Entry());
  for (auto _ : state) {
    std::string text = xml::WriteXml(doc);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_SerializeFigure6Xml);

void BM_ParseFigure6Xml(benchmark::State& state) {
  std::string text = xml::WriteXml(
      hounds::EnzymeXmlTransformer::EntryToXml(datagen::Figure2Entry()));
  for (auto _ : state) {
    auto doc = xml::ParseXml(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(text.size()) *
                          state.iterations());
}
BENCHMARK(BM_ParseFigure6Xml);

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  std::printf(
      "bench_transform - experiment F6 (paper Figs 2->6): Data Hounds "
      "XML-Transformer stage.\nArg = EMBL-scale corpus size (enzymes = "
      "n/3).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
