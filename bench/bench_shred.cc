// Experiment C1 (paper §2.2): "RDBMSs are capable of storing and
// processing large volumes of data efficiently" - shredding (XML2Relational)
// throughput as corpus size grows, end-to-end warehouse load cost, and the
// per-stage split (transform vs validate+shred).
//
// Paper expectation: load cost is linear in corpus size; shredding
// dominates the pipeline (it writes ~10 rows per document across five
// tables and maintains every index).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datahounds/generic_schema.h"
#include "datahounds/shredder.h"

namespace xomatiq {
namespace {

using benchutil::ScaledOptions;
using benchutil::Unwrap;

// Pre-transformed document sets, cached per scale.
const std::vector<hounds::TransformedDocument>& EnzymeDocs(size_t n) {
  static auto* cache =
      new std::map<size_t, std::vector<hounds::TransformedDocument>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
    hounds::EnzymeXmlTransformer transformer;
    it = cache
             ->emplace(n, Unwrap(transformer.Transform(
                                     datagen::ToEnzymeFlatFile(corpus)),
                                 "transform"))
             .first;
  }
  return it->second;
}

// Shredding alone (documents already transformed), with all production
// indexes maintained during the load.
void BM_ShredDocuments(benchmark::State& state) {
  const auto& docs = EnzymeDocs(static_cast<size_t>(state.range(0)));
  size_t nodes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto db = rel::Database::OpenInMemory();
    benchutil::Check(hounds::EnsureGenericTables(db.get()), "tables");
    benchutil::Check(hounds::EnsureGenericIndexes(db.get()), "indexes");
    hounds::Shredder shredder(db.get());
    benchutil::Check(shredder.Init(), "init");
    state.ResumeTiming();
    nodes = 0;
    for (const auto& doc : docs) {
      auto stats = shredder.ShredDocument(doc.document, "c", doc.uri, {}, 0);
      nodes += stats->nodes;
      benchmark::DoNotOptimize(stats);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs.size()) *
                          state.iterations());
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_ShredDocuments)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// Shredding without secondary indexes: isolates index-maintenance cost.
void BM_ShredDocumentsNoIndexes(benchmark::State& state) {
  const auto& docs = EnzymeDocs(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = rel::Database::OpenInMemory();
    benchutil::Check(hounds::EnsureGenericTables(db.get()), "tables");
    hounds::Shredder shredder(db.get());
    benchutil::Check(shredder.Init(), "init");
    state.ResumeTiming();
    for (const auto& doc : docs) {
      auto stats = shredder.ShredDocument(doc.document, "c", doc.uri, {}, 0);
      benchmark::DoNotOptimize(stats);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs.size()) *
                          state.iterations());
}
BENCHMARK(BM_ShredDocumentsNoIndexes)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// End-to-end warehouse load: transform + validate + shred, all three
// sources (what Data Hounds does on the initial harvest).
void BM_WarehouseLoadEndToEnd(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
  std::string enzyme_raw = datagen::ToEnzymeFlatFile(corpus);
  std::string embl_raw = datagen::ToEmblFlatFile(corpus);
  std::string sprot_raw = datagen::ToSwissProtFlatFile(corpus);
  hounds::EnzymeXmlTransformer enzyme_tf;
  hounds::EmblXmlTransformer embl_tf;
  hounds::SwissProtXmlTransformer sprot_tf;
  size_t docs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto db = rel::Database::OpenInMemory();
    auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open");
    state.ResumeTiming();
    docs = 0;
    docs += Unwrap(warehouse->LoadSource("hlx_enzyme.DEFAULT", enzyme_tf,
                                         enzyme_raw),
                   "enzyme")
                .documents;
    docs += Unwrap(warehouse->LoadSource("hlx_embl.inv", embl_tf, embl_raw),
                   "embl")
                .documents;
    docs += Unwrap(warehouse->LoadSource("hlx_sprot.all", sprot_tf,
                                         sprot_raw),
                   "sprot")
                .documents;
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs) * state.iterations());
}
BENCHMARK(BM_WarehouseLoadEndToEnd)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  std::printf(
      "bench_shred - experiment C1 (paper §2.2): XML2Relational load "
      "throughput.\nExpectation: linear scaling; index maintenance is a "
      "constant factor over the raw shred.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
