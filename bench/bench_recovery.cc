// Experiment C7 (paper §2.2): "by using a standard commercial relational
// database system, we can exploit the ... crash recovery features of an
// RDBMS". Measures WAL append overhead during loads, recovery replay time
// as a function of log size, and the snapshot/checkpoint alternative.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_util.h"

namespace xomatiq {
namespace {

using benchutil::ScaledOptions;
using benchutil::Unwrap;

std::string BenchDir(const char* tag) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/xq_bench_recovery_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

// Durable vs in-memory load: the WAL tax on warehouse builds.
void BM_LoadInMemory(benchmark::State& state) {
  datagen::Corpus corpus =
      datagen::GenerateCorpus(ScaledOptions(static_cast<size_t>(state.range(0))));
  std::string raw = datagen::ToEnzymeFlatFile(corpus);
  hounds::EnzymeXmlTransformer transformer;
  for (auto _ : state) {
    auto db = rel::Database::OpenInMemory();
    auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open");
    auto stats = Unwrap(
        warehouse->LoadSource("hlx_enzyme.DEFAULT", transformer, raw),
        "load");
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_LoadInMemory)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_LoadDurable(benchmark::State& state) {
  datagen::Corpus corpus =
      datagen::GenerateCorpus(ScaledOptions(static_cast<size_t>(state.range(0))));
  std::string raw = datagen::ToEnzymeFlatFile(corpus);
  hounds::EnzymeXmlTransformer transformer;
  std::string dir = BenchDir("load");
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    auto db = Unwrap(rel::Database::Open(dir), "open");
    auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open wh");
    auto stats = Unwrap(
        warehouse->LoadSource("hlx_enzyme.DEFAULT", transformer, raw),
        "load");
    benchmark::DoNotOptimize(stats);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LoadDurable)->Arg(400)->Unit(benchmark::kMillisecond);

// Recovery replay time as the WAL grows (no checkpoint).
void BM_RecoverFromWal(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
  std::string raw = datagen::ToEnzymeFlatFile(corpus);
  hounds::EnzymeXmlTransformer transformer;
  std::string dir = BenchDir(("wal" + std::to_string(n)).c_str());
  uint64_t wal_bytes = 0;
  {
    auto db = Unwrap(rel::Database::Open(dir), "open");
    auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open wh");
    Unwrap(warehouse->LoadSource("hlx_enzyme.DEFAULT", transformer, raw),
           "load");
    wal_bytes = db->wal_bytes();
  }
  size_t records = 0;
  for (auto _ : state) {
    auto db = Unwrap(rel::Database::Open(dir), "recover");
    records = db->records_recovered();
    benchmark::DoNotOptimize(db);
  }
  state.counters["wal_bytes"] = static_cast<double>(wal_bytes);
  state.counters["records"] = static_cast<double>(records);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RecoverFromWal)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// Recovery after a checkpoint: snapshot load instead of log replay.
void BM_RecoverFromSnapshot(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
  std::string raw = datagen::ToEnzymeFlatFile(corpus);
  hounds::EnzymeXmlTransformer transformer;
  std::string dir = BenchDir(("snap" + std::to_string(n)).c_str());
  {
    auto db = Unwrap(rel::Database::Open(dir), "open");
    auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open wh");
    Unwrap(warehouse->LoadSource("hlx_enzyme.DEFAULT", transformer, raw),
           "load");
    benchutil::Check(db->Checkpoint(), "checkpoint");
  }
  for (auto _ : state) {
    auto db = Unwrap(rel::Database::Open(dir), "recover");
    benchmark::DoNotOptimize(db);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RecoverFromSnapshot)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// Checkpoint cost itself.
void BM_Checkpoint(benchmark::State& state) {
  datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(400));
  std::string raw = datagen::ToEnzymeFlatFile(corpus);
  hounds::EnzymeXmlTransformer transformer;
  std::string dir = BenchDir("ckpt");
  auto db = Unwrap(rel::Database::Open(dir), "open");
  auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open wh");
  Unwrap(warehouse->LoadSource("hlx_enzyme.DEFAULT", transformer, raw),
         "load");
  for (auto _ : state) {
    benchutil::Check(db->Checkpoint(), "checkpoint");
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Checkpoint)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  std::printf(
      "bench_recovery - experiment C7 (paper §2.2): WAL durability and "
      "crash recovery.\nExpectation: durable loads pay a per-record WAL "
      "tax; replay time grows with log size; snapshot recovery is faster "
      "than replaying a long log (why checkpoints exist).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
