// Experiment F11 (paper Figs 10-12): the join query mode - correlating
// EMBL feature qualifiers with ENZYME EC numbers. Measured through
// XomatiQ (relational evaluation over the shredded store), on the native
// DOM store (nested-loop value join over trees), and at the SQL level
// comparing the engine's join algorithms on the same generic-schema
// tables.
//
// Paper expectation: the relational engine wins on joins - that is the
// heart of the "use an RDBMS underneath" argument (§2.2, §3.2). The DOM
// nested loop grows quadratically; hash / index-nested-loop joins stay
// near-linear.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sql/engine.h"

namespace xomatiq {
namespace {

using benchutil::GetNativeStore;
using benchutil::GetWarehouse;
using benchutil::Unwrap;

void BM_Fig11_XomatiQ(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(benchutil::Fig11Query()),
                         "fig11");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig11_XomatiQ)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_Fig11_NativeDom(benchmark::State& state) {
  auto* store = GetNativeStore(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(
        store->JoinQuery("hlx_embl.inv", "//qualifier",
                         "hlx_enzyme.DEFAULT", "//enzyme_id",
                         {"//embl_accession_number", "//description"}),
        "native join");
    rows = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig11_NativeDom)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// SQL-level join-algorithm ablation on the shredded tables: the same
// value join evaluated with (a) the hash join the planner picks when the
// btree on xml_text(value) is hidden, (b) the index-nested-loop plan, and
// (c) a forced nested loop via an inequality-shaped predicate. We emulate
// plan forcing by running against warehouses with different index sets.
// Resolves actual path ids for the qualifier / enzyme_id paths, then
// counts join matches; keeps the comparison apples-to-apples.
std::string ResolvedJoinSql(benchutil::LoadedWarehouse* fixture) {
  sql::SqlEngine engine(fixture->db.get());
  auto paths = Unwrap(
      engine.Execute("SELECT path_id, path FROM xml_path"), "paths");
  int64_t qualifier_id = -1, enzyme_id = -1;
  for (const auto& row : paths.rows) {
    const std::string& path = row[1].AsText();
    if (path ==
        "/hlx_n_sequence/db_entry/feature_table/feature/qualifier") {
      qualifier_id = row[0].AsInt();
    }
    if (path == "/hlx_enzyme/db_entry/enzyme_id") enzyme_id = row[0].AsInt();
  }
  return "SELECT COUNT(*) FROM xml_node nq, xml_text q, xml_node ne, "
         "xml_text e WHERE nq.path_id = " +
         std::to_string(qualifier_id) +
         " AND q.node_id = nq.node_id AND ne.path_id = " +
         std::to_string(enzyme_id) +
         " AND e.node_id = ne.node_id AND q.value = e.value";
}

void BM_SqlValueJoin_WithIndexes(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  sql::SqlEngine engine(fixture->db.get());
  std::string sql = ResolvedJoinSql(fixture);
  for (auto _ : state) {
    auto result = Unwrap(engine.Execute(sql), "join");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SqlValueJoin_WithIndexes)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_SqlValueJoin_HashJoinOnly(benchmark::State& state) {
  // Hide the node_id hash indexes so the planner cannot use
  // index-nested-loop; the equi-join becomes a hash join.
  static auto* cache = new std::map<size_t, benchutil::LoadedWarehouse*>();
  size_t n = static_cast<size_t>(state.range(0));
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto* fixture = new benchutil::LoadedWarehouse();
    fixture->corpus =
        datagen::GenerateCorpus(benchutil::ScaledOptions(n));
    fixture->db = rel::Database::OpenInMemory();
    fixture->warehouse =
        Unwrap(hounds::Warehouse::Open(fixture->db.get()), "open");
    hounds::EnzymeXmlTransformer enzyme_tf;
    hounds::EmblXmlTransformer embl_tf;
    Unwrap(fixture->warehouse->LoadSource(
               "hlx_enzyme.DEFAULT", enzyme_tf,
               datagen::ToEnzymeFlatFile(fixture->corpus)),
           "load");
    Unwrap(fixture->warehouse->LoadSource(
               "hlx_embl.inv", embl_tf,
               datagen::ToEmblFlatFile(fixture->corpus)),
           "load");
    benchutil::Check(fixture->db->DropIndex("idx_text_node"), "drop");
    benchutil::Check(fixture->db->DropIndex("idx_text_value"), "drop");
    benchutil::Check(fixture->db->DropIndex("idx_node_id"), "drop");
    it = cache->emplace(n, fixture).first;
  }
  sql::SqlEngine engine(it->second->db.get());
  std::string sql = ResolvedJoinSql(it->second);
  for (auto _ : state) {
    auto result = Unwrap(engine.Execute(sql), "hash join");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SqlValueJoin_HashJoinOnly)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  std::printf(
      "bench_join - experiment F11 (paper Figs 10-12): cross-database "
      "join.\nExpectation: relational evaluation (index-nested-loop / "
      "hash) scales near-linearly; the native DOM nested loop blows up "
      "quadratically.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
