// Experiment C8 (schema-design ablation): the paper's generic
// edge/path schema (§2.2, "independent of any particular instance of XML
// data") versus the path-partitioned "binary" layout from the literature
// it cites (STORED / Shanmugasundaram et al.), both hosted on the same
// relational engine and loaded from the same corpus.
//
// Expected trade-off: the partitioned layout wins raw query latency (the
// per-path tables are small and the queries need no path filtering or
// containment joins) at the cost of schema churn (one table + three
// indexes per distinct path), loss of structure (no document
// reconstruction), and slower loads.

#include <benchmark/benchmark.h>

#include "baseline/path_partitioned.h"
#include "bench_util.h"
#include "sql/engine.h"

namespace xomatiq {
namespace {

using benchutil::ScaledOptions;
using benchutil::Unwrap;

struct PartitionedFixture {
  std::unique_ptr<rel::Database> db;
  std::unique_ptr<baseline::PathPartitionedStore> store;
  std::string fig9_sql;
  std::string fig11_sql;
};

PartitionedFixture* GetPartitioned(size_t n) {
  static auto* cache = new std::map<size_t, PartitionedFixture*>();
  auto it = cache->find(n);
  if (it != cache->end()) return it->second;
  auto* f = new PartitionedFixture();
  f->db = rel::Database::OpenInMemory();
  f->store = std::make_unique<baseline::PathPartitionedStore>(f->db.get());
  benchutil::Check(f->store->Init(), "init");
  datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
  hounds::EnzymeXmlTransformer enzyme_tf;
  hounds::EmblXmlTransformer embl_tf;
  Unwrap(f->store->LoadDocuments(
             "hlx_enzyme.DEFAULT",
             Unwrap(enzyme_tf.Transform(datagen::ToEnzymeFlatFile(corpus)),
                    "tf")),
         "load");
  Unwrap(f->store->LoadDocuments(
             "hlx_embl.inv",
             Unwrap(embl_tf.Transform(datagen::ToEmblFlatFile(corpus)),
                    "tf")),
         "load");
  std::string activity = Unwrap(
      f->store->TableForPathSuffix("hlx_enzyme.DEFAULT",
                                   "catalytic_activity"),
      "path");
  std::string id = Unwrap(
      f->store->TableForPathSuffix("hlx_enzyme.DEFAULT", "enzyme_id"),
      "path");
  std::string description = Unwrap(
      f->store->TableForPathSuffix("hlx_enzyme.DEFAULT",
                                   "enzyme_description"),
      "path");
  std::string qualifier =
      Unwrap(f->store->TableForPathSuffix("hlx_embl.inv", "qualifier"),
             "path");
  std::string accession = Unwrap(
      f->store->TableForPathSuffix("hlx_embl.inv", "embl_accession_number"),
      "path");
  std::string embl_description = Unwrap(
      f->store->TableForPathSuffix("hlx_embl.inv", "description"), "path");
  f->fig9_sql = "SELECT DISTINCT i.value, d.value FROM " + activity +
                " c, " + id + " i, " + description +
                " d WHERE CONTAINS(c.value, 'ketone') AND i.doc_id = "
                "c.doc_id AND d.doc_id = c.doc_id";
  f->fig11_sql = "SELECT DISTINCT a.value, d.value FROM " + qualifier +
                 " q, " + Unwrap(f->store->TableForPathSuffix(
                                     "hlx_enzyme.DEFAULT", "enzyme_id"),
                                 "path") +
                 " e, " + accession + " a, " + embl_description +
                 " d WHERE q.value = e.value AND a.doc_id = q.doc_id AND "
                 "d.doc_id = q.doc_id";
  (*cache)[n] = f;
  return f;
}

// --- query latency: generic schema (XomatiQ) vs partitioned ------------

void BM_Fig9_GenericSchema(benchmark::State& state) {
  auto* fixture = benchutil::GetWarehouse(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(benchutil::Fig9Query()),
                         "fig9");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig9_GenericSchema)->Arg(100)->Arg(400)->Arg(1600);

void BM_Fig9_PathPartitioned(benchmark::State& state) {
  auto* f = GetPartitioned(static_cast<size_t>(state.range(0)));
  sql::SqlEngine engine(f->db.get());
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(engine.Execute(f->fig9_sql), "fig9-pp");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig9_PathPartitioned)->Arg(100)->Arg(400)->Arg(1600);

void BM_Fig11_GenericSchema(benchmark::State& state) {
  auto* fixture = benchutil::GetWarehouse(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(benchutil::Fig11Query()),
                         "fig11");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig11_GenericSchema)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_Fig11_PathPartitioned(benchmark::State& state) {
  auto* f = GetPartitioned(static_cast<size_t>(state.range(0)));
  sql::SqlEngine engine(f->db.get());
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(engine.Execute(f->fig11_sql), "fig11-pp");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig11_PathPartitioned)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// --- load cost + schema churn --------------------------------------------

void BM_Load_PathPartitioned(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
  hounds::EnzymeXmlTransformer enzyme_tf;
  auto docs = Unwrap(enzyme_tf.Transform(datagen::ToEnzymeFlatFile(corpus)),
                     "tf");
  size_t tables = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto db = rel::Database::OpenInMemory();
    baseline::PathPartitionedStore store(db.get());
    benchutil::Check(store.Init(), "init");
    state.ResumeTiming();
    auto stats = Unwrap(store.LoadDocuments("c", docs), "load");
    tables = stats.tables;
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs.size()) *
                          state.iterations());
  state.counters["path_tables"] = static_cast<double>(tables);
}
BENCHMARK(BM_Load_PathPartitioned)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_Load_GenericSchema(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
  std::string raw = datagen::ToEnzymeFlatFile(corpus);
  hounds::EnzymeXmlTransformer transformer;
  for (auto _ : state) {
    state.PauseTiming();
    auto db = rel::Database::OpenInMemory();
    auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open");
    state.ResumeTiming();
    auto stats = Unwrap(
        warehouse->LoadSource("hlx_enzyme.DEFAULT", transformer, raw),
        "load");
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_Load_GenericSchema)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  std::printf(
      "bench_schema - experiment C8 (schema-design ablation): the paper's "
      "generic edge/path schema vs the path-partitioned layout it cites "
      "as related work.\nExpectation: partitioned tables answer the fixed "
      "query shapes faster (no path filter, no containment joins) but pay "
      "in schema churn (a table + 3 indexes per path), lose document "
      "reconstruction, and the generic schema keeps ad-hoc '//' queries "
      "possible without knowing paths at load time.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
