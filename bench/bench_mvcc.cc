// MVCC benchmark: reader tail latency while a writer syncs the warehouse.
// Writes BENCH_mvcc.json.
//
//   bench_mvcc [corpus_n] [readers] [seconds_per_phase]
//
// Phases:
//   snapshot_reads
//       closed-loop SQL readers pinning per-query snapshots (the MVCC
//       path): fully latch-free, concurrent with an endless SyncSource
//       loop on a writer thread.
//   latch_reads
//       the same workload with each read additionally taking a
//       writer-priority reader/writer latch shared while syncs take it
//       exclusive — the pre-MVCC discipline, where every sync's
//       exclusive section stalls every reader for its full duration.
//       (A writer-priority latch rather than std::shared_mutex: glibc's
//       rwlock prefers readers, so a closed reader loop starves the
//       writer and no reads would ever block — measuring nothing.)
//       The p95 gap between the two phases is the case for snapshot
//       isolation.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/query_request.h"
#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "datahounds/xml_transformer.h"
#include "relational/database.h"
#include "sql/engine.h"

namespace {

using namespace xomatiq;
using Clock = std::chrono::steady_clock;

constexpr char kEnzymes[] = "hlx_enzyme.DEFAULT";

datagen::Corpus MakeCorpus(size_t n, uint64_t seed) {
  datagen::CorpusOptions options;
  options.seed = seed;
  options.num_enzymes = n;
  options.num_proteins = n;
  options.num_nucleotides = 0;
  return datagen::GenerateCorpus(options);
}

// Writer-priority reader/writer latch for the baseline phase: an
// arriving writer gates new readers, drains the active ones, runs its
// exclusive section, then releases the queue — the behaviour of the
// exclusive database latch the snapshot path replaced.
class WriterPriorityLatch {
 public:
  void lock_shared() {
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [&] { return !writer_active_ && writers_waiting_ == 0; });
    ++active_readers_;
  }
  void unlock_shared() {
    std::lock_guard<std::mutex> l(mu_);
    if (--active_readers_ == 0) cv_.notify_all();
  }
  void lock() {
    std::unique_lock<std::mutex> l(mu_);
    ++writers_waiting_;
    cv_.wait(l, [&] { return !writer_active_ && active_readers_ == 0; });
    --writers_waiting_;
    writer_active_ = true;
  }
  void unlock() {
    std::lock_guard<std::mutex> l(mu_);
    writer_active_ = false;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int active_readers_ = 0;
  int writers_waiting_ = 0;
  bool writer_active_ = false;
};

struct PhaseResult {
  uint64_t reads = 0;
  uint64_t read_errors = 0;
  uint64_t syncs = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<long>(idx), v.end());
  return v[idx];
}

// One phase: `readers` closed-loop SELECT threads against a warehouse a
// writer keeps syncing between two corpus states. `latch_reads` selects
// the pre-MVCC discipline (shared write latch around every read).
PhaseResult RunPhase(size_t corpus_n, int readers, int seconds,
                     bool latch_reads) {
  auto db = rel::Database::OpenInMemory();
  auto warehouse =
      benchutil::Unwrap(hounds::Warehouse::Open(db.get()), "open warehouse");
  hounds::EnzymeXmlTransformer transformer;
  datagen::Corpus corpus_a = MakeCorpus(corpus_n, 42);
  datagen::Corpus corpus_b = corpus_a;
  for (auto& e : corpus_b.enzymes) e.comments.push_back("state b");
  corpus_b.enzymes.pop_back();
  const std::string raw_a = datagen::ToEnzymeFlatFile(corpus_a);
  const std::string raw_b = datagen::ToEnzymeFlatFile(corpus_b);
  benchutil::Check(
      warehouse->LoadSource(kEnzymes, transformer, raw_a).status(),
      "load corpus");

  std::atomic<bool> stop{false};
  WriterPriorityLatch baseline_latch;
  PhaseResult result;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(readers));
  std::atomic<uint64_t> errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      sql::SqlEngine engine(db.get());
      std::vector<double>& lat = latencies[static_cast<size_t>(t)];
      lat.reserve(1 << 16);
      const common::QueryRequest req = common::QueryRequest::Sql(
          "SELECT doc_id, uri FROM xml_document");
      while (!stop.load(std::memory_order_relaxed)) {
        auto start = Clock::now();
        if (latch_reads) {
          // Pre-MVCC read discipline: a sync's exclusive section blocks
          // this acquisition for its whole duration.
          baseline_latch.lock_shared();
          if (!engine.Execute(req).ok()) errors.fetch_add(1);
          baseline_latch.unlock_shared();
        } else {
          if (!engine.Execute(req).ok()) errors.fetch_add(1);
        }
        lat.push_back(std::chrono::duration<double, std::micro>(
                          Clock::now() - start)
                          .count());
        // Closed loop with think time: an interactive client issuing a
        // query every couple of milliseconds. Without it the sub-50us
        // reads issued between exclusive sections swamp the sample and
        // the percentiles never see a stall.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::thread writer([&] {
    uint64_t s = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (latch_reads) baseline_latch.lock();
      benchutil::Check(
          warehouse
              ->SyncSource(kEnzymes, transformer, (s % 2 == 0) ? raw_b : raw_a)
              .status(),
          "sync");
      if (latch_reads) baseline_latch.unlock();
      ++s;
      // Identical writer cadence in both phases: without a gap a
      // writer-priority latch is held nearly continuously and the
      // baseline measures pure starvation instead of sync stalls.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    result.syncs = s;
  });

  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  writer.join();

  std::vector<double> all;
  for (auto& lat : latencies) {
    result.reads += lat.size();
    all.insert(all.end(), lat.begin(), lat.end());
  }
  result.read_errors = errors.load();
  result.p50_us = Percentile(all, 0.50);
  result.p95_us = Percentile(all, 0.95);
  result.p99_us = Percentile(all, 0.99);
  result.max_us = all.empty() ? 0 : *std::max_element(all.begin(), all.end());
  return result;
}

void Report(benchutil::JsonReport* report, const char* name,
            const PhaseResult& r, int readers, int seconds) {
  std::printf(
      "%-16s reads=%llu errs=%llu syncs=%llu p50=%.0fus p95=%.0fus "
      "p99=%.0fus max=%.0fus\n",
      name, static_cast<unsigned long long>(r.reads),
      static_cast<unsigned long long>(r.read_errors),
      static_cast<unsigned long long>(r.syncs), r.p50_us, r.p95_us, r.p99_us,
      r.max_us);
  report->Add(name,
              {{"readers", readers},
               {"seconds", seconds},
               {"reads", static_cast<double>(r.reads)},
               {"read_errors", static_cast<double>(r.read_errors)},
               {"syncs", static_cast<double>(r.syncs)},
               {"reads_per_sec", static_cast<double>(r.reads) / seconds},
               {"p50_us", r.p50_us},
               {"p95_us", r.p95_us},
               {"p99_us", r.p99_us},
               {"max_us", r.max_us}});
}

}  // namespace

int main(int argc, char** argv) {
  size_t corpus_n = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 120;
  int readers = argc > 2 ? std::atoi(argv[2]) : 4;
  int seconds = argc > 3 ? std::atoi(argv[3]) : 5;

  benchutil::JsonReport report("BENCH_mvcc.json");
  PhaseResult snapshot = RunPhase(corpus_n, readers, seconds, false);
  Report(&report, "snapshot_reads", snapshot, readers, seconds);
  PhaseResult latched = RunPhase(corpus_n, readers, seconds, true);
  Report(&report, "latch_reads", latched, readers, seconds);

  const double speedup =
      snapshot.p95_us > 0 ? latched.p95_us / snapshot.p95_us : 0;
  std::printf("p95 speedup (latch/snapshot): %.1fx\n", speedup);
  report.Add("summary", {{"p95_speedup", speedup}});
  return report.Write() ? 0 : 1;
}
