#ifndef XOMATIQ_BENCH_BENCH_UTIL_H_
#define XOMATIQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "baseline/native_xml.h"
#include "baseline/srs.h"
#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "xomatiq/xomatiq.h"

namespace xomatiq::benchutil {

// Aborts on error (benchmark fixtures have no error channel worth using).
template <typename T>
T Unwrap(common::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void Check(const common::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

// Machine-readable benchmark output: accumulates named records of numeric
// metrics and writes them as a JSON array (e.g. BENCH_pipeline.json) so
// drivers can diff runs without scraping stdout.
class JsonReport {
 public:
  explicit JsonReport(std::string path) : path_(std::move(path)) {}

  void Add(std::string name,
           std::vector<std::pair<std::string, double>> metrics) {
    records_.push_back({std::move(name), std::move(metrics)});
  }

  // Writes the report; returns false (and prints to stderr) on I/O error.
  bool Write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (size_t r = 0; r < records_.size(); ++r) {
      std::fprintf(f, "  {\"name\": \"%s\"", records_[r].name.c_str());
      for (const auto& [key, value] : records_[r].metrics) {
        std::fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", r + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Record {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string path_;
  std::vector<Record> records_;
};

// Scale knob for corpus sweeps: `n` is the EMBL entry count; enzymes and
// proteins scale proportionally. Keyword/link selectivities follow the
// paper's workload shape (rare keyword, moderate join fan-in).
inline datagen::CorpusOptions ScaledOptions(size_t n) {
  datagen::CorpusOptions options;
  // Seed chosen so every scale has nonzero keyword / ketone / EC-link
  // ground truth (seed 42's prefix happens to yield zero ketone enzymes
  // below ~50 entries).
  options.seed = 7;
  options.num_nucleotides = n;
  options.num_proteins = (2 * n) / 3;
  options.num_enzymes = n / 3;
  options.keyword_fraction = 0.05;
  options.ketone_fraction = 0.10;
  options.ec_link_fraction = 0.40;
  return options;
}

// A fully-loaded warehouse (all three collections) plus its corpus.
struct LoadedWarehouse {
  std::unique_ptr<rel::Database> db;
  std::unique_ptr<hounds::Warehouse> warehouse;
  std::unique_ptr<xq::XomatiQ> xomatiq;
  datagen::Corpus corpus;
};

// Loads (and caches, per size) a warehouse with all three collections.
// Cached fixtures are deliberately leaked at process exit.
inline LoadedWarehouse* GetWarehouse(size_t n) {
  static auto* cache = new std::map<size_t, LoadedWarehouse*>();
  auto it = cache->find(n);
  if (it != cache->end()) return it->second;
  auto* fixture = new LoadedWarehouse();
  fixture->corpus = datagen::GenerateCorpus(ScaledOptions(n));
  fixture->db = rel::Database::OpenInMemory();
  fixture->warehouse =
      Unwrap(hounds::Warehouse::Open(fixture->db.get()), "warehouse");
  hounds::EnzymeXmlTransformer enzyme_tf;
  hounds::EmblXmlTransformer embl_tf;
  hounds::SwissProtXmlTransformer sprot_tf;
  Unwrap(fixture->warehouse->LoadSource(
             "hlx_enzyme.DEFAULT", enzyme_tf,
             datagen::ToEnzymeFlatFile(fixture->corpus)),
         "load enzyme");
  Unwrap(fixture->warehouse->LoadSource(
             "hlx_embl.inv", embl_tf,
             datagen::ToEmblFlatFile(fixture->corpus)),
         "load embl");
  Unwrap(fixture->warehouse->LoadSource(
             "hlx_sprot.all", sprot_tf,
             datagen::ToSwissProtFlatFile(fixture->corpus)),
         "load sprot");
  fixture->xomatiq = std::make_unique<xq::XomatiQ>(fixture->warehouse.get());
  (*cache)[n] = fixture;
  return fixture;
}

// Native in-memory DOM store over the same corpus (the "semistructured
// database" alternative of §2.2).
inline baseline::NativeXmlStore* GetNativeStore(size_t n) {
  static auto* cache = new std::map<size_t, baseline::NativeXmlStore*>();
  auto it = cache->find(n);
  if (it != cache->end()) return it->second;
  auto* store = new baseline::NativeXmlStore();
  datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
  hounds::EnzymeXmlTransformer enzyme_tf;
  hounds::EmblXmlTransformer embl_tf;
  hounds::SwissProtXmlTransformer sprot_tf;
  auto enzyme_docs =
      Unwrap(enzyme_tf.Transform(datagen::ToEnzymeFlatFile(corpus)), "tf");
  for (auto& d : enzyme_docs) {
    store->Load("hlx_enzyme.DEFAULT", std::move(d.document));
  }
  auto embl_docs =
      Unwrap(embl_tf.Transform(datagen::ToEmblFlatFile(corpus)), "tf");
  for (auto& d : embl_docs) store->Load("hlx_embl.inv", std::move(d.document));
  auto sprot_docs =
      Unwrap(sprot_tf.Transform(datagen::ToSwissProtFlatFile(corpus)), "tf");
  for (auto& d : sprot_docs) {
    store->Load("hlx_sprot.all", std::move(d.document));
  }
  (*cache)[n] = store;
  return store;
}

// SRS-style engine over the same corpus: libraries with the classic
// indexed fields and predefined EMBL -> Swiss-Prot links.
inline baseline::SrsEngine* GetSrs(size_t n) {
  static auto* cache = new std::map<size_t, baseline::SrsEngine*>();
  auto it = cache->find(n);
  if (it != cache->end()) return it->second;
  auto* srs = new baseline::SrsEngine();
  datagen::Corpus corpus = datagen::GenerateCorpus(ScaledOptions(n));
  Check(srs->CreateLibrary("EMBL", {"id", "acc", "des", "kw", "org"}),
        "srs embl");
  Check(srs->CreateLibrary("SWISSPROT", {"id", "acc", "des", "kw", "gen"}),
        "srs sprot");
  Check(srs->CreateLibrary("ENZYME", {"id", "de", "ca", "cf"}),
        "srs enzyme");
  for (const auto& e : corpus.nucleotides) {
    baseline::SrsEngine::Entry entry;
    entry.id = e.id;
    entry.fields["id"] = {e.id};
    entry.fields["acc"] = e.accessions;
    entry.fields["des"] = {e.description};
    entry.fields["kw"] = e.keywords;
    entry.fields["org"] = {e.organism};
    Check(srs->AddEntry("EMBL", std::move(entry)), "srs add");
  }
  for (const auto& p : corpus.proteins) {
    baseline::SrsEngine::Entry entry;
    entry.id = p.id;
    entry.fields["id"] = {p.id};
    entry.fields["acc"] = p.accessions;
    entry.fields["des"] = {p.description};
    entry.fields["kw"] = p.keywords;
    entry.fields["gen"] = p.gene_names;
    Check(srs->AddEntry("SWISSPROT", std::move(entry)), "srs add");
  }
  for (const auto& e : corpus.enzymes) {
    baseline::SrsEngine::Entry entry;
    entry.id = e.id;
    entry.fields["id"] = {e.id};
    entry.fields["de"] = e.descriptions;
    entry.fields["ca"] = e.catalytic_activities;
    entry.fields["cf"] = e.cofactors;
    Check(srs->AddEntry("ENZYME", std::move(entry)), "srs add");
  }
  // Predefined link set: EMBL -> SWISSPROT via DR cross-references.
  for (const auto& e : corpus.nucleotides) {
    for (const auto& x : e.xrefs) {
      if (x.database == "SWISS-PROT" && !x.secondary.empty()) {
        Check(srs->AddLink("EMBL", e.id, "SWISSPROT", x.secondary),
              "srs link");
      }
    }
  }
  (*cache)[n] = srs;
  return srs;
}

// The three reproduced query texts.
inline const char* Fig8Query() {
  return R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6", any) AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number)";
}

inline const char* Fig9Query() {
  return R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description)";
}

inline const char* Fig11Query() {
  return R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description)";
}

}  // namespace xomatiq::benchutil

#endif  // XOMATIQ_BENCH_BENCH_UTIL_H_
