// Experiment F9 (paper Fig 9 / Fig 7): the sub-tree search mode -
// contains($a//catalytic_activity, "ketone") - evaluated through the
// relational engine with the production indexes, with the indexes
// dropped, and on the native DOM store.
//
// Paper expectation (§3.2): with the index set derived from plan
// analysis, sub-tree queries are answered from the inverted keyword index
// plus node joins; dropping the indexes degrades to full scans.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datahounds/generic_schema.h"

namespace xomatiq {
namespace {

using benchutil::GetNativeStore;
using benchutil::GetWarehouse;
using benchutil::ScaledOptions;
using benchutil::Unwrap;

void BM_Fig9_XomatiQ_Indexed(benchmark::State& state) {
  auto* fixture = GetWarehouse(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(benchutil::Fig9Query()),
                         "fig9");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig9_XomatiQ_Indexed)->Arg(100)->Arg(400)->Arg(1600);

// The same query with every generic-schema index dropped: all access
// paths degrade to sequential scans + hash joins.
void BM_Fig9_XomatiQ_NoIndexes(benchmark::State& state) {
  // A private warehouse per scale (the shared fixture keeps its indexes).
  static auto* cache = new std::map<size_t, benchutil::LoadedWarehouse*>();
  size_t n = static_cast<size_t>(state.range(0));
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto* fixture = new benchutil::LoadedWarehouse();
    fixture->corpus = datagen::GenerateCorpus(ScaledOptions(n));
    fixture->db = rel::Database::OpenInMemory();
    fixture->warehouse =
        Unwrap(hounds::Warehouse::Open(fixture->db.get()), "open");
    hounds::EnzymeXmlTransformer transformer;
    Unwrap(fixture->warehouse->LoadSource(
               "hlx_enzyme.DEFAULT", transformer,
               datagen::ToEnzymeFlatFile(fixture->corpus)),
           "load");
    benchutil::Check(hounds::DropGenericIndexes(fixture->db.get()), "drop");
    fixture->xomatiq = std::make_unique<xq::XomatiQ>(fixture->warehouse.get());
    it = cache->emplace(n, fixture).first;
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(it->second->xomatiq->Execute(benchutil::Fig9Query()),
                         "fig9-noidx");
    rows = result.rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig9_XomatiQ_NoIndexes)->Arg(100)->Arg(400)->Arg(1600);

void BM_Fig9_NativeDom(benchmark::State& state) {
  auto* store = GetNativeStore(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    auto result = Unwrap(
        store->SubtreeQuery("hlx_enzyme.DEFAULT", "//catalytic_activity",
                            "ketone",
                            {"//enzyme_id", "//enzyme_description"}),
        "native");
    rows = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig9_NativeDom)->Arg(100)->Arg(400)->Arg(1600);

// Conjunctive / disjunctive variants (the paper notes XomatiQ supports
// "complex conjunctive and disjunctive constraints").
void BM_ConjunctiveConditions(benchmark::State& state) {
  auto* fixture = GetWarehouse(400);
  const char* query = R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
  AND contains($a//cofactor, "Copper")
RETURN $a//enzyme_id)";
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(query), "conj");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ConjunctiveConditions);

void BM_DisjunctiveConditions(benchmark::State& state) {
  auto* fixture = GetWarehouse(400);
  const char* query = R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
   OR contains($a//cofactor, "Copper")
RETURN $a//enzyme_id)";
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(query), "disj");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DisjunctiveConditions);

// Equality on a specific element value (exact-match path, btree index on
// xml_text.value).
void BM_ValueEquality(benchmark::State& state) {
  auto* fixture = GetWarehouse(400);
  std::string query =
      "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme/db_entry "
      "WHERE $a/enzyme_id = \"" +
      fixture->corpus.enzymes[7].id +
      "\" RETURN $a/enzyme_id, $a//enzyme_description";
  for (auto _ : state) {
    auto result = Unwrap(fixture->xomatiq->Execute(query), "eq");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ValueEquality);

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  std::printf(
      "bench_subtree - experiment F9 (paper Figs 7/9): sub-tree keyword "
      "query.\nExpectation: indexed evaluation ~flat in corpus size; "
      "index-free and native-DOM evaluation grow linearly.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
