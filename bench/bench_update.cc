// Experiment C4 (paper §2 requirement 2 + §2.2 triggers): incremental
// warehouse maintenance. Measures SyncSource cost as a function of the
// fraction of remote entries that changed, the unchanged-detection fast
// path (content hashes), and trigger fan-out to subscribers.
//
// Paper expectation: a sync where nothing changed costs roughly one
// transform + hash pass (no relational writes); cost grows with the
// number of changed entries, not the corpus size alone.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace xomatiq {
namespace {

using benchutil::ScaledOptions;
using benchutil::Unwrap;

// Fresh warehouse loaded with the corpus; returns corpus + warehouse.
std::unique_ptr<benchutil::LoadedWarehouse> FreshWarehouse(size_t n) {
  auto fixture = std::make_unique<benchutil::LoadedWarehouse>();
  fixture->corpus = datagen::GenerateCorpus(ScaledOptions(n));
  fixture->db = rel::Database::OpenInMemory();
  fixture->warehouse =
      Unwrap(hounds::Warehouse::Open(fixture->db.get()), "open");
  hounds::EnzymeXmlTransformer transformer;
  Unwrap(fixture->warehouse->LoadSource(
             "hlx_enzyme.DEFAULT", transformer,
             datagen::ToEnzymeFlatFile(fixture->corpus)),
         "load");
  return fixture;
}

// Remote copy with `percent`% of the enzyme entries modified.
std::string MutatedRaw(const datagen::Corpus& corpus, int percent) {
  datagen::Corpus remote = corpus;
  size_t step = percent > 0 ? std::max<size_t>(1, 100 / percent) : 0;
  if (step > 0) {
    for (size_t i = 0; i < remote.enzymes.size(); i += step) {
      remote.enzymes[i].comments.push_back("revision marker");
    }
  }
  return datagen::ToEnzymeFlatFile(remote);
}

void BM_SyncNoChanges(benchmark::State& state) {
  auto fixture = FreshWarehouse(static_cast<size_t>(state.range(0)));
  std::string raw = datagen::ToEnzymeFlatFile(fixture->corpus);
  hounds::EnzymeXmlTransformer transformer;
  for (auto _ : state) {
    auto stats = Unwrap(fixture->warehouse->SyncSource("hlx_enzyme.DEFAULT",
                                                       transformer, raw),
                        "sync");
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_SyncNoChanges)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// Percent-changed sweep at fixed corpus size. The warehouse is re-synced
// back and forth between the original and the mutated copy, so every
// iteration applies the same number of updates.
void BM_SyncPercentChanged(benchmark::State& state) {
  auto fixture = FreshWarehouse(400);
  hounds::EnzymeXmlTransformer transformer;
  std::string original = datagen::ToEnzymeFlatFile(fixture->corpus);
  std::string mutated =
      MutatedRaw(fixture->corpus, static_cast<int>(state.range(0)));
  bool flip = false;
  size_t updated = 0;
  for (auto _ : state) {
    auto stats = Unwrap(
        fixture->warehouse->SyncSource("hlx_enzyme.DEFAULT", transformer,
                                       flip ? original : mutated),
        "sync");
    updated = stats.updated;
    flip = !flip;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["updated_docs"] = static_cast<double>(updated);
}
BENCHMARK(BM_SyncPercentChanged)->Arg(0)->Arg(5)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Trigger fan-out: cost of notifying many subscribed applications.
void BM_TriggerFanOut(benchmark::State& state) {
  auto fixture = FreshWarehouse(200);
  hounds::EnzymeXmlTransformer transformer;
  size_t delivered = 0;
  for (int64_t i = 0; i < state.range(0); ++i) {
    fixture->warehouse->Subscribe(
        [&delivered](const hounds::ChangeEvent&) { ++delivered; });
  }
  std::string original = datagen::ToEnzymeFlatFile(fixture->corpus);
  std::string mutated = MutatedRaw(fixture->corpus, 25);
  bool flip = false;
  for (auto _ : state) {
    auto stats = Unwrap(
        fixture->warehouse->SyncSource("hlx_enzyme.DEFAULT", transformer,
                                       flip ? original : mutated),
        "sync");
    flip = !flip;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["events_delivered"] = static_cast<double>(delivered);
}
BENCHMARK(BM_TriggerFanOut)->Arg(1)->Arg(16)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xomatiq

int main(int argc, char** argv) {
  std::printf(
      "bench_update - experiment C4 (paper §2/§2.2): incremental sync and "
      "change triggers.\nExpectation: unchanged sync = transform+hash only; "
      "cost scales with changed fraction; trigger fan-out is linear but "
      "cheap.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
